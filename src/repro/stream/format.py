"""The ``MDZ2`` append-only chunked container format.

Unlike the monolithic ``MDZ1`` layout (header + index + one payload area,
assembled in memory), ``MDZ2`` is written incrementally and is safe against
a writer that dies mid-stream.  Layout (all integers little-endian)::

    magic    : 4 bytes  b"MDZ2"
    header   : b"HDR2" | u32 len | JSON | u32 crc32(JSON)
    chunk*   : b"CHNK" | u32 buffer | u32 axis | u32 rows
               | u64 len | u32 crc32(payload) | payload
    footer   : b"FTRX" | u32 len | JSON index | u32 crc32(JSON)
    trailer  : u64 footer_offset | b"2ZDM"

Every chunk frame is *self-delimiting* and carries its own CRC, so a file
whose footer was never written (crashed writer, torn copy) can be
recovered by a linear scan: every fully written chunk is still decodable,
and the scan stops at the first truncated or corrupted frame.  The footer
(written at close) is an index of all chunk frames plus the final snapshot
count, giving O(1) open and random access on intact files.

A chunk's payload is exactly one :class:`~repro.core.mdz.MDZAxisCompressor`
batch blob — the same bytes the ``MDZ1`` payload area concatenates — for
buffer ``buffer`` of axis ``axis`` covering ``rows`` snapshots.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO

from ..exceptions import ContainerFormatError

#: File magic of the streaming container.
STREAM_MAGIC = b"MDZ2"
#: Frame markers.
HEADER_MAGIC = b"HDR2"
CHUNK_MAGIC = b"CHNK"
FOOTER_MAGIC = b"FTRX"
#: End-of-file marker (magic reversed) preceded by the footer offset.
END_MAGIC = b"2ZDM"

_SECTION_HEAD = struct.Struct("<4sI")  # marker, body length
_CHUNK_HEAD = struct.Struct("<4sIIIQI")  # marker, buffer, axis, rows, len, crc
_TRAILER = struct.Struct("<Q4s")  # footer offset, end magic
_U32 = struct.Struct("<I")


@dataclass(frozen=True)
class ChunkEntry:
    """Location and identity of one chunk frame inside a stream."""

    buffer_index: int
    axis: int
    rows: int
    offset: int  # absolute offset of the payload bytes
    length: int
    crc32: int

    def to_row(self) -> list[int]:
        """Compact JSON representation used by the footer index."""
        return [
            self.buffer_index,
            self.axis,
            self.rows,
            self.offset,
            self.length,
            self.crc32,
        ]

    @classmethod
    def from_row(cls, row: list) -> "ChunkEntry":
        return cls(*(int(v) for v in row))


@dataclass
class StreamLayout:
    """Parsed structure of an ``MDZ2`` stream (no payload decoding)."""

    header: dict
    chunks: list[ChunkEntry]
    snapshots: int
    #: True when the footer was present and intact; False for a layout
    #: rebuilt by the recovery scan.
    complete: bool


def is_stream_container(blob: bytes) -> bool:
    """True when ``blob`` starts with the ``MDZ2`` magic."""
    return blob[:4] == STREAM_MAGIC


# -- writing ------------------------------------------------------------


def write_magic(fh: BinaryIO) -> int:
    fh.write(STREAM_MAGIC)
    return len(STREAM_MAGIC)


def _write_json_section(fh: BinaryIO, marker: bytes, obj: dict) -> int:
    body = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode()
    fh.write(_SECTION_HEAD.pack(marker, len(body)))
    fh.write(body)
    fh.write(_U32.pack(zlib.crc32(body) & 0xFFFFFFFF))
    return _SECTION_HEAD.size + len(body) + _U32.size


def write_header(fh: BinaryIO, header: dict) -> int:
    """Write the stream header frame; returns bytes written."""
    return _write_json_section(fh, HEADER_MAGIC, header)


def write_chunk(
    fh: BinaryIO,
    buffer_index: int,
    axis: int,
    rows: int,
    payload: bytes,
    offset: int,
) -> tuple[ChunkEntry, int]:
    """Append one chunk frame at absolute position ``offset``.

    Returns the index entry and the number of bytes written.
    """
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    fh.write(
        _CHUNK_HEAD.pack(
            CHUNK_MAGIC, buffer_index, axis, rows, len(payload), crc
        )
    )
    fh.write(payload)
    entry = ChunkEntry(
        buffer_index=buffer_index,
        axis=axis,
        rows=rows,
        offset=offset + _CHUNK_HEAD.size,
        length=len(payload),
        crc32=crc,
    )
    return entry, _CHUNK_HEAD.size + len(payload)


def write_footer(
    fh: BinaryIO,
    chunks: list[ChunkEntry],
    snapshots: int,
    footer_offset: int,
) -> int:
    """Write the footer index and the end trailer; returns bytes written."""
    body = {
        "snapshots": snapshots,
        "chunks": [entry.to_row() for entry in chunks],
    }
    written = _write_json_section(fh, FOOTER_MAGIC, body)
    fh.write(_TRAILER.pack(footer_offset, END_MAGIC))
    return written + _TRAILER.size


# -- parsing ------------------------------------------------------------


def _read_json_section(
    blob: bytes, offset: int, marker: bytes, what: str
) -> tuple[dict, int]:
    """Parse one JSON frame; returns (object, offset past the frame)."""
    end = offset + _SECTION_HEAD.size
    if end > len(blob):
        raise ContainerFormatError(f"truncated container: missing {what}")
    found, length = _SECTION_HEAD.unpack_from(blob, offset)
    if found != marker:
        raise ContainerFormatError(
            f"bad {what} marker {found!r}; expected {marker!r}"
        )
    body_end = end + length
    if body_end + _U32.size > len(blob):
        raise ContainerFormatError(f"truncated container: short {what}")
    body = blob[end:body_end]
    (stored_crc,) = _U32.unpack_from(blob, body_end)
    if zlib.crc32(body) & 0xFFFFFFFF != stored_crc:
        raise ContainerFormatError(f"{what} checksum mismatch")
    try:
        obj = json.loads(body.decode("utf-8"))
    except ValueError as exc:
        raise ContainerFormatError(f"corrupt {what} JSON: {exc}") from exc
    return obj, body_end + _U32.size


def _parse_footer(blob: bytes, body_start: int) -> StreamLayout | None:
    """Parse header + footer of an intact file; None if the footer is bad."""
    try:
        tail = blob[-_TRAILER.size :]
        footer_offset, end_magic = _TRAILER.unpack(tail)
        if end_magic != END_MAGIC:
            return None
        if not body_start <= footer_offset < len(blob):
            return None
        footer, after = _read_json_section(
            blob, footer_offset, FOOTER_MAGIC, "footer"
        )
    except (ContainerFormatError, struct.error):
        return None
    return StreamLayout(
        header={},
        chunks=[ChunkEntry.from_row(row) for row in footer["chunks"]],
        snapshots=int(footer["snapshots"]),
        complete=True,
    )


def _scan_chunks(blob: bytes, offset: int) -> list[ChunkEntry]:
    """Linear recovery scan: every intact chunk frame, in file order.

    Stops at the first frame that is truncated, fails its CRC, or does not
    carry the chunk marker (a torn footer counts as end-of-stream).
    """
    chunks: list[ChunkEntry] = []
    pos = offset
    size = len(blob)
    while pos + _CHUNK_HEAD.size <= size:
        marker, buffer_index, axis, rows, length, crc = _CHUNK_HEAD.unpack_from(
            blob, pos
        )
        if marker != CHUNK_MAGIC:
            break
        payload_start = pos + _CHUNK_HEAD.size
        payload_end = payload_start + length
        if payload_end > size:
            break  # torn tail: the frame was never fully written
        if zlib.crc32(blob[payload_start:payload_end]) & 0xFFFFFFFF != crc:
            break  # corrupted frame: nothing after it can be trusted
        chunks.append(
            ChunkEntry(
                buffer_index=buffer_index,
                axis=axis,
                rows=rows,
                offset=payload_start,
                length=length,
                crc32=crc,
            )
        )
        pos = payload_end
    return chunks


def parse_stream(blob: bytes, recover: bool = False) -> StreamLayout:
    """Parse an ``MDZ2`` stream into its layout.

    With ``recover=False`` (the default) a stream without an intact footer
    raises :class:`ContainerFormatError` — a safety net against silently
    reading a truncated copy.  With ``recover=True`` the chunk frames are
    re-indexed by a linear scan and every fully written chunk survives.
    """
    if not is_stream_container(blob):
        raise ContainerFormatError(
            f"bad container magic {blob[:4]!r}; expected {STREAM_MAGIC!r}"
        )
    header, body_start = _read_json_section(
        blob, len(STREAM_MAGIC), HEADER_MAGIC, "header"
    )
    layout = _parse_footer(blob, body_start)
    if layout is not None:
        layout.header = header
        return layout
    if not recover:
        raise ContainerFormatError(
            "stream has no intact footer (truncated or crashed writer); "
            "open with recover=True to index the surviving chunks"
        )
    chunks = _scan_chunks(blob, body_start)
    snapshots = sum(c.rows for c in chunks if c.axis == 0)
    return StreamLayout(
        header=header, chunks=chunks, snapshots=snapshots, complete=False
    )


def chunk_payload(blob: bytes, entry: ChunkEntry) -> bytes:
    """Extract and CRC-verify one chunk's payload bytes."""
    payload = blob[entry.offset : entry.offset + entry.length]
    if len(payload) != entry.length:
        raise ContainerFormatError(
            f"chunk (buffer {entry.buffer_index}, axis {entry.axis}) "
            "extends past the end of the container"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != entry.crc32:
        raise ContainerFormatError(
            f"chunk (buffer {entry.buffer_index}, axis {entry.axis}) "
            "checksum mismatch: the container is corrupted"
        )
    return payload
