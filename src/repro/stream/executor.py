"""Parallel compression executor: a worker pool with ordered reassembly.

The streaming writer produces compression jobs per buffer flush.  After a
session's first buffer, MDZ's cross-buffer state is frozen (the level
model and MT reference are fitted once; only ADP's trial counter
advances), so non-trial buffers can be encoded *out of session* by a
worker process given a small state snapshot (:class:`AxisJobSpec`) — with
byte-identical output.  :class:`ParallelExecutor` fans those jobs across a
``multiprocessing`` pool while preserving three invariants:

* **ordering** — results come back strictly in submission order, so the
  writer can append chunk frames as they complete;
* **backpressure** — at most ``max_pending`` jobs are in flight; a full
  queue blocks the producer (the MD loop) instead of buffering an
  unbounded trajectory in memory;
* **graceful degradation** — ``workers <= 1``, a pool that fails to
  start, or a pool that dies mid-stream all fall back to inline serial
  execution of the same job functions, which keeps the output bytes
  unchanged.

The transport is built to beat serial execution, not just match it:

* **shared-memory payloads** — batch arrays travel through a ring of
  ``max_pending`` reusable :mod:`multiprocessing.shared_memory` slots
  (:meth:`ParallelExecutor.acquire_slot`) instead of being pickled into
  the job arguments, so the producer pays one memcpy per flush and the
  worker reads the bytes in place;
* **persistent worker sessions** — each :class:`AxisJobSpec` carries a
  BLAKE2b digest of the frozen session state; workers cache the rebuilt
  :class:`~repro.core.mdz.MDZAxisCompressor` keyed by that digest
  (``stream.executor.state_cache.hit``/``miss``), so the reference
  snapshot and level fit cross the process boundary once per session,
  not once per job.  A digest miss falls back to full-state shipping,
  so correctness never depends on the cache;
* **batched dispatch** — the writer submits one :class:`FlushJobSpec`
  per flush (all axes in a single :func:`encode_flush` call), one IPC
  round trip instead of one per axis.

When shared memory is unavailable (or fails mid-stream) the executor
degrades to pickled payloads, and from there to inline execution —
every rung of the ladder produces the same bytes.

Transient failures (a worker killed by the OS, an injected
:class:`OSError`) are retried with capped exponential backoff
(:func:`backoff_delay`) before the pool is abandoned: a failed pool job
is resubmitted up to ``MAX_RETRIES`` times, and inline execution retries
the call the same way, so a fault that clears (freed memory, returned
scratch space) costs a delay instead of the stream.  Every retry and
failure is counted/logged through :mod:`repro.telemetry`
(``stream.executor.job_retries`` / ``job_failed``).
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from ..baselines.api import SessionMeta
from ..cluster.level_detect import LevelFit
from ..core.config import MDZConfig
from ..core.mdz import MDZAxisCompressor
from ..telemetry import get_recorder
from ..telemetry.logging import get_logger

_log = get_logger("stream.executor")

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

_DONE = 0  # queue entry already holds its result
_JOB = 1  # queue entry is an outstanding pool job


def backoff_delay(attempt: int, base: float, cap: float) -> float:
    """Capped exponential backoff before retry ``attempt`` (1-based).

    ``min(base * 2 ** (attempt - 1), cap)``: the first retry waits
    ``base`` seconds, each later retry doubles the wait up to ``cap``.
    This is the one formula behind every retry sleep in the streaming
    layer — the executor's job retries and the writer's chunk-commit
    retries both call it, so the documented policy cannot drift from the
    implementation.
    """
    return min(base * 2.0 ** (max(int(attempt), 1) - 1), cap)


# -- shared-memory plumbing ---------------------------------------------
#
# Segments created by this process are remembered here so that (a) inline
# fallback jobs and fork-started workers reuse the mapping instead of
# re-attaching, and (b) re-attaching in a spawn-started worker does not
# hand ownership to that worker's resource tracker (which would unlink
# the segment — still in use by the session — when the worker exits).

_LOCAL_SEGMENTS: dict[str, "object"] = {}


def _create_segment(nbytes: int):
    seg = _shm.SharedMemory(create=True, size=max(int(nbytes), 1))
    _LOCAL_SEGMENTS[seg.name] = seg
    return seg


def _destroy_segment(seg) -> None:
    _LOCAL_SEGMENTS.pop(seg.name, None)
    try:
        seg.close()
        seg.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover - already gone
        pass


def _attach_segment(name: str):
    seg = _LOCAL_SEGMENTS.get(name)
    if seg is not None:
        return seg
    seg = _shm.SharedMemory(name=name)
    try:
        # Attaching registers the segment with this process's resource
        # tracker as if it owned it; unregister so a worker exiting does
        # not unlink (or warn about) a segment the session still owns.
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API is best-effort
        pass
    _LOCAL_SEGMENTS[name] = seg
    return seg


def shared_array(desc: tuple) -> np.ndarray:
    """View the ``(name, shape, dtype)`` payload segment as an ndarray."""
    name, shape, dtype = desc
    seg = _attach_segment(name)
    return np.ndarray(shape, dtype=dtype, buffer=seg.buf)


def shared_bytes(desc: tuple) -> bytes:
    """Copy the ``(name, nbytes)`` segment contents out as bytes."""
    name, nbytes = desc
    seg = _attach_segment(name)
    return bytes(seg.buf[:nbytes])


class _ShmRing:
    """``capacity`` reusable payload slots, created lazily, grown in place.

    A slot is a shared-memory segment recycled across flushes; it is
    recreated (old segment unlinked first) when a payload outgrows it.
    The ring never holds more than ``capacity`` segments, which bounds
    the shared-memory footprint by the same ``max_pending`` knob that
    bounds in-flight jobs.
    """

    def __init__(self, capacity: int) -> None:
        self._segments: list = [None] * capacity
        self._free: list[int] = list(range(capacity))

    @property
    def idle(self) -> bool:
        """True when no slot is held by an in-flight job."""
        return len(self._free) == len(self._segments)

    def try_acquire(self, nbytes: int):
        """``(index, segment)`` with ``segment.size >= nbytes``, or
        ``None`` when every slot is held."""
        if not self._free:
            return None
        index = self._free.pop()
        seg = self._segments[index]
        if seg is None or seg.size < nbytes:
            if seg is not None:
                _destroy_segment(seg)
            try:
                seg = _create_segment(nbytes)
            except OSError:
                self._free.append(index)
                raise
            self._segments[index] = seg
        return index, seg

    def release(self, index: int) -> None:
        if index not in self._free:
            self._free.append(index)

    def destroy(self) -> None:
        """Unlink every segment (idempotent)."""
        for seg in self._segments:
            if seg is not None:
                _destroy_segment(seg)
        self._segments = [None] * len(self._segments)
        self._free = list(range(len(self._segments)))


@dataclass
class _ShmSlot:
    """One acquired ring slot; released when its job resolves."""

    ring: _ShmRing
    index: int
    segment: object

    def pack(self, array: np.ndarray) -> tuple:
        """Copy ``array`` into the slot; returns its transport descriptor
        ``(name, shape, dtype)`` for :func:`shared_array`."""
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=self.segment.buf
        )
        np.copyto(view, array)
        return (self.segment.name, tuple(array.shape), array.dtype.str)


@dataclass(frozen=True)
class AxisJobSpec:
    """Everything a worker needs to encode one buffer of one axis.

    The spec is the frozen session state exported by
    :meth:`~repro.core.mdz.MDZAxisCompressor.export_session_state` plus
    the session configuration.  ``reference`` is shipped only for
    members whose registry entry sets ``needs_reference`` (MT,
    bitadaptive), keeping per-job pickling cost low for the rest.

    ``state_digest`` is the BLAKE2b digest of that frozen state: workers
    cache the rebuilt session under it, so a spec whose digest the worker
    has seen before costs no state transfer or session rebuild at all.
    When the state *does* need to travel, ``state_shm`` names a
    shared-memory segment holding the pickled ``(reference, level_fit)``
    pair — published once per session by the writer — and the inline
    ``reference``/``level_fit`` fields stay ``None``.  Specs carrying
    the state inline (no digest, no segment) remain fully supported;
    that is the fallback when shared memory is unavailable and the
    correctness baseline the cache is checked against.

    ``trace`` and ``telemetry`` carry the observability context across
    the process boundary: ``trace`` is a span-context token from
    :meth:`~repro.telemetry.tracing.TracingRecorder.export_token` (the
    worker's root span re-parents under it), ``telemetry`` asks for a
    metrics-only sideband.  Either makes :func:`encode_axis_buffer`
    return ``(blob, snapshot)`` instead of bare bytes; the writer folds
    the snapshot into the session recorder on collection.  Both default
    off, so the plain path stays a bare-bytes, zero-overhead job.
    """

    method: str
    error_bound: float
    n_atoms: int
    quantization_scale: int
    sequence_mode: str
    lossless_backend: str
    level_seed: int
    reference: np.ndarray | None
    level_fit: LevelFit | None
    entropy_streams: int | None = None
    trace: tuple | None = None
    telemetry: bool = False
    state_digest: str | None = None
    state_shm: tuple | None = None  # (name, nbytes) of pickled state


@dataclass(frozen=True)
class FlushJobSpec:
    """All out-of-session axis jobs of one buffer flush.

    Dispatching the flush as a unit means one IPC round trip (one
    ``apply_async``, one result pickle) carries every axis instead of
    one per axis.  ``shm`` names the shared-memory payload segment
    holding the stacked ``(axes, B, N)`` batch — ``None`` when the
    payload travels pickled (shared memory unavailable)."""

    jobs: tuple[AxisJobSpec, ...]
    shm: tuple | None = None  # (name, shape, dtype) of the stacked payload


# -- worker-side session cache ------------------------------------------
#
# Rebuilding an MDZAxisCompressor per job is pure overhead once the
# session state is frozen: the same reference array and LevelFit are
# unpickled and re-seeded thousands of times over a long trajectory.
# Workers therefore keep the rebuilt sessions in a small per-process LRU
# keyed by the spec's state digest.  The digest covers every field that
# shapes the encoded bytes (see export_session_state), so a cache hit is
# byte-identical to a rebuild by construction, and the methods never
# mutate the frozen state after seeding — VQ/VQT read the cached level
# fit, MT/bitadaptive read the reference — so reuse across jobs is
# safe.

_SESSION_CACHE_MAX = 8
_SESSIONS: "OrderedDict[str, MDZAxisCompressor]" = OrderedDict()


def _build_session(spec: AxisJobSpec) -> MDZAxisCompressor:
    config = MDZConfig(
        error_bound=spec.error_bound,
        error_bound_mode="absolute",
        quantization_scale=spec.quantization_scale,
        sequence_mode=spec.sequence_mode,
        method=spec.method,
        lossless_backend=spec.lossless_backend,
        level_seed=spec.level_seed,
        entropy_streams=spec.entropy_streams,
    )
    session = MDZAxisCompressor(config)
    session.begin(spec.error_bound, SessionMeta(n_atoms=spec.n_atoms))
    reference, level_fit = spec.reference, spec.level_fit
    if spec.state_shm is not None:
        reference, level_fit = pickle.loads(shared_bytes(spec.state_shm))
    session.seed_session(reference, level_fit)
    return session


def _session_for(spec: AxisJobSpec) -> MDZAxisCompressor:
    """The cached session for ``spec``, rebuilding on digest miss."""
    digest = spec.state_digest
    if digest is None:
        return _build_session(spec)
    recorder = get_recorder()
    session = _SESSIONS.get(digest)
    if session is not None:
        _SESSIONS.move_to_end(digest)
        recorder.count("stream.executor.state_cache.hit")
        return session
    recorder.count("stream.executor.state_cache.miss")
    session = _build_session(spec)
    _SESSIONS[digest] = session
    while len(_SESSIONS) > _SESSION_CACHE_MAX:
        _SESSIONS.popitem(last=False)
    return session


def _encode(spec: AxisJobSpec, batch: np.ndarray) -> bytes:
    """The bare encode: a fixed-method session seeded with the frozen
    state (cached per digest), reusing the exact serial encode path —
    which is what makes parallel output byte-identical to serial."""
    return _session_for(spec).compress_batch(batch)


def encode_axis_buffer(spec: AxisJobSpec, batch: np.ndarray):
    """Encode one (B, N) buffer from a frozen state snapshot.

    Runs in worker processes (and inline in serial mode).  With no
    observability context on the spec, returns the compressed bytes.
    With ``spec.trace``/``spec.telemetry`` set, the job runs under its
    own process-local recorder — a worker cannot mutate the session's
    recorder across the process boundary — and returns
    ``(blob, snapshot)``; traced jobs open a root span whose parent is
    the session-side span that dispatched them, so the merged trace
    nests worker work under the flush that produced it.
    """
    if spec.trace is None and not spec.telemetry:
        return _encode(spec, batch)
    from ..telemetry import MetricsRecorder, recording
    from ..telemetry.tracing import TracingRecorder

    recorder = TracingRecorder() if spec.trace is not None else MetricsRecorder()
    # Install through the context-local slot, not the process-global one:
    # inline fallback jobs may run on several threads at once (the HTTP
    # service feeds tenants from a thread pool), and a global set/restore
    # pair interleaved across threads can resurrect another job's
    # recorder as the "previous" value.  The ContextVar scope is private
    # to this thread's context, so concurrent jobs cannot clobber it.
    with recording(recorder):
        if spec.trace is not None:
            parent, attrs = spec.trace
            with recorder.span(
                "stream.worker.encode_axis", parent=parent, **attrs
            ):
                blob = _encode(spec, batch)
        else:
            blob = _encode(spec, batch)
    return blob, recorder.snapshot()


def encode_flush(flush: FlushJobSpec, batches):
    """Encode every axis job of one flush in a single call.

    ``batches`` is the stacked ``(axes, B, N)`` payload — ``None`` when
    it travels through the shared-memory slot named by ``flush.shm``,
    in which case the worker reads the slot in place (the executor does
    not recycle a slot until its job resolves, and no method retains a
    view of the batch past the encode).  Returns the per-axis results
    in job order; each is whatever :func:`encode_axis_buffer` returns
    (bytes, or ``(blob, snapshot)`` with observability enabled).
    """
    if batches is None:
        batches = shared_array(flush.shm)
    return [
        encode_axis_buffer(spec, batches[i])
        for i, spec in enumerate(flush.jobs)
    ]


class ParallelExecutor:
    """FIFO job executor over an optional ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Worker process count (``>= 0``).  ``<= 1`` selects inline serial
        execution (no pool, no pickling).
    max_pending:
        Bound on in-flight pool jobs and shared-memory payload slots
        (backpressure).  Must be ``>= 1`` when given; defaults to
        ``4 * workers``.

    Usage::

        ex = ParallelExecutor(workers=4)
        ex.submit(fn, arg)            # may block when the queue is full
        ex.push(value)                # inject an already-computed result
        for result in ex.ready():     # completed results, in order
            ...
        for result in ex.drain():     # block for everything else
            ...
        ex.close()
    """

    #: Transient-failure retry policy: a failed job (pool or inline) is
    #: retried up to MAX_RETRIES times, sleeping
    #: ``backoff_delay(attempt, RETRY_BASE_DELAY, RETRY_MAX_DELAY)`` =
    #: ``min(RETRY_BASE_DELAY * 2**(attempt - 1), RETRY_MAX_DELAY)``
    #: before retry ``attempt``.  Deterministic job errors still surface
    #: — they simply fail every attempt and raise from the final inline
    #: run.
    MAX_RETRIES = 2
    RETRY_BASE_DELAY = 0.05
    RETRY_MAX_DELAY = 1.0

    def __init__(self, workers: int = 0, max_pending: int | None = None):
        self.workers = int(workers)
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self._serial = self.workers <= 1
        if max_pending is None:
            self.max_pending = 4 * max(self.workers, 1)
        else:
            self.max_pending = int(max_pending)
            if self.max_pending < 1:
                raise ValueError(
                    f"max_pending must be >= 1, got {max_pending}"
                )
        self._pool = None
        self._broken = False
        self._ring: _ShmRing | None = None
        self._shm_broken = _shm is None
        self._published: list = []  # session-lifetime state segments
        # FIFO of [kind, value_or_handle, fn, args, slot]; popped only
        # from the left, which is what guarantees ordered reassembly.
        self._queue: deque[list] = deque()

    # -- lifecycle ------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True while jobs are actually dispatched to a live pool."""
        return not (self._serial or self._broken)

    def _ensure_pool(self) -> None:
        if self._pool is None and self.parallel:
            try:
                self._pool = multiprocessing.get_context().Pool(
                    processes=self.workers
                )
            except Exception as exc:
                get_recorder().event(
                    "stream.executor.pool_start_failed", repr(exc)
                )
                _log.warning(
                    "worker pool failed to start; encoding inline",
                    exc_info=exc,
                )
                self._abandon_pool()

    def _abandon_pool(self) -> None:
        """Mark the pool dead and re-run every outstanding job inline.

        Handles of a terminated pool never complete, so leaving ``_JOB``
        entries in the queue would hang the next ``drain()``.  The jobs
        are deterministic, so recomputing them preserves the output.
        Payload slots are released as their jobs re-run; the ring itself
        is unlinked only once idle (a producer caught mid-backpressure
        may still hold a packed, not-yet-submitted slot) — otherwise it
        is left for ``close()``/``terminate()``, which the writer
        lifecycle always reaches.
        """
        recorder = get_recorder()
        self._broken = True
        pool, self._pool = self._pool, None
        if pool is not None:
            recorder.count("stream.executor.pool_abandoned")
            try:
                pool.terminate()
                pool.join()
            except Exception as exc:
                # Teardown of an already-dead pool can itself fail; the
                # stream survives either way, but the event must not
                # vanish — production debugging needs to see it happened.
                recorder.event(
                    "stream.executor.pool_teardown_error", repr(exc)
                )
                _log.error("worker pool teardown failed", exc_info=exc)
        if pool is not None:
            _log.warning(
                "worker pool abandoned; remaining jobs run inline"
            )
        rerun = 0
        for entry in self._queue:
            if entry[0] == _JOB:
                entry[1] = self._call_with_retry(entry[2], entry[3])
                entry[0] = _DONE
                self._release_entry_slot(entry)
                entry[2] = entry[3] = None
                rerun += 1
        if recorder.enabled and rerun:
            recorder.count("stream.executor.jobs_rerun_inline", rerun)
        if self._ring is not None and self._ring.idle:
            self._ring.destroy()
            self._ring = None

    def close(self) -> None:
        """Shut the pool down and unlink every shared-memory segment
        (pending jobs must be drained first)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
            pool.join()
        self._destroy_shared()

    def terminate(self) -> None:
        """Abandon everything immediately (crash/abort path); shared
        memory is unlinked unconditionally."""
        self._queue.clear()
        self._abandon_pool()
        self._destroy_shared()

    def _destroy_shared(self) -> None:
        if self._ring is not None:
            self._ring.destroy()
            self._ring = None
        for seg in self._published:
            _destroy_segment(seg)
        self._published.clear()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()

    # -- shared-memory transport ----------------------------------------

    def acquire_slot(self, nbytes: int) -> _ShmSlot | None:
        """An ``nbytes``-capable payload slot, or ``None`` to fall back
        to pickled payloads (serial mode, dead pool, or shared memory
        unavailable).

        Blocks — resolving the oldest in-flight job, exactly like
        ``submit``'s backpressure — while all ``max_pending`` slots are
        held, so the ring bound and the job bound are the same knob.
        The caller must pass the returned slot to :meth:`submit`, which
        releases it when the job resolves (including every degraded
        path: abandon-sweep rerun and inline fallback).
        """
        recorder = get_recorder()
        if not self.parallel or self._shm_broken:
            return None
        self._ensure_pool()
        if not self.parallel:
            return None
        if self._ring is None:
            self._ring = _ShmRing(self.max_pending)
        while True:
            try:
                got = self._ring.try_acquire(nbytes)
            except OSError as exc:
                recorder.event(
                    "stream.executor.shm_unavailable", repr(exc)
                )
                self._shm_broken = True
                return None
            if got is not None:
                index, segment = got
                return _ShmSlot(ring=self._ring, index=index, segment=segment)
            if self._inflight() == 0:
                # Every slot held but nothing in flight to free one — a
                # slot leaked (a failure between acquire and submit).
                # Fall back to the pickled path rather than spin.
                recorder.event(
                    "stream.executor.shm_unavailable", "ring exhausted"
                )
                return None
            recorder.count("stream.executor.backpressure_waits")
            self._resolve_oldest_job()
            if not self.parallel:
                return None

    def publish(self, payload: bytes) -> tuple | None:
        """Place session-lifetime ``payload`` bytes in a shared segment.

        Used by the writer to ship the pickled frozen session state once
        per (session, digest) instead of once per job.  The segment is
        owned by the executor and unlinked at ``close``/``terminate``.
        Returns the ``(name, nbytes)`` descriptor for
        :func:`shared_bytes`, or ``None`` when jobs will not cross a
        process boundary (the spec should then carry the state inline).
        """
        if not self.parallel or self._shm_broken:
            return None
        self._ensure_pool()
        if not self.parallel:
            return None
        try:
            seg = _create_segment(len(payload))
        except OSError as exc:
            get_recorder().event(
                "stream.executor.shm_unavailable", repr(exc)
            )
            self._shm_broken = True
            return None
        seg.buf[: len(payload)] = payload
        self._published.append(seg)
        get_recorder().count("stream.executor.shm_bytes", len(payload))
        return (seg.name, len(payload))

    # -- submission -----------------------------------------------------

    def push(self, value) -> None:
        """Enqueue an already-computed result, preserving FIFO order.

        The writer uses this for buffers that must be encoded in-session
        (first buffer, ADP trials) so their chunks interleave correctly
        with pool-encoded ones.
        """
        get_recorder().count("stream.executor.pushed")
        self._queue.append([_DONE, value, None, None, None])

    def submit(self, fn, *args, slot: _ShmSlot | None = None) -> None:
        """Enqueue ``fn(*args)``; blocks while ``max_pending`` jobs are
        in flight.  ``fn`` must be a picklable module-level function.
        ``slot`` is the payload slot the arguments reference, released
        when the job resolves (on every path, including degradation)."""
        recorder = get_recorder()
        if not self.parallel:
            recorder.count("stream.executor.inline")
            self._finish_inline(fn, args, slot)
            return
        self._ensure_pool()
        if not self.parallel:
            recorder.count("stream.executor.inline")
            self._finish_inline(fn, args, slot)
            return
        while self._inflight() >= self.max_pending:
            recorder.count("stream.executor.backpressure_waits")
            self._resolve_oldest_job()
            if not self.parallel:
                # The pool died while we waited; the abandon sweep
                # already re-ran the queue inline — follow it there.
                recorder.count("stream.executor.inline")
                self._finish_inline(fn, args, slot)
                return
        try:
            handle = self._pool.apply_async(fn, args)
        except Exception as exc:
            # Pool died between jobs: degrade to inline execution.
            recorder.event("stream.executor.submit_failed", repr(exc))
            self._abandon_pool()
            recorder.count("stream.executor.inline")
            self._finish_inline(fn, args, slot)
            return
        recorder.count("stream.executor.dispatched")
        self._queue.append([_JOB, handle, fn, args, slot])

    def _finish_inline(self, fn, args, slot) -> None:
        """Run a job inline and enqueue its result; the slot is released
        even when the job raises (the payload was consumed either way)."""
        try:
            value = self._call_with_retry(fn, args)
        finally:
            if slot is not None:
                slot.ring.release(slot.index)
        self._queue.append([_DONE, value, None, None, None])

    # -- collection -----------------------------------------------------

    def ready(self) -> list:
        """Completed results available right now, in submission order.

        Never blocks: stops at the first entry whose job is still running.
        """
        out = []
        while self._queue:
            entry = self._queue[0]
            if entry[0] == _JOB:
                if not entry[1].ready():
                    break
                self._resolve(entry)
            out.append(self._queue.popleft()[1])
        return out

    def drain(self) -> list:
        """Every outstanding result, in order; blocks until all complete."""
        out = []
        while self._queue:
            entry = self._queue[0]
            if entry[0] == _JOB:
                self._resolve(entry)
            out.append(self._queue.popleft()[1])
        return out

    # -- internals ------------------------------------------------------

    def _inflight(self) -> int:
        return sum(1 for entry in self._queue if entry[0] == _JOB)

    def _resolve_oldest_job(self) -> None:
        for entry in self._queue:
            if entry[0] == _JOB:
                self._resolve(entry)
                return

    def _release_entry_slot(self, entry: list) -> None:
        slot, entry[4] = entry[4], None
        if slot is not None:
            slot.ring.release(slot.index)

    #: Upper bound on one pool job (a lost task — e.g. a worker killed by
    #: the OS — would otherwise block ``get()`` forever).
    JOB_TIMEOUT = 600.0

    def _resolve(self, entry: list) -> None:
        """Wait for one pool job; retry on failure, then re-run inline.

        A failed ``get()`` (worker death, job exception, timeout) is
        first retried by resubmitting the job to the pool with backoff;
        only after ``MAX_RETRIES`` resubmissions — or when the pool
        cannot accept jobs at all — is the pool abandoned and the job
        re-run inline, where a genuine job error surfaces to the caller
        while a dead pool is survived transparently.
        """
        recorder = get_recorder()
        attempts = 0
        while True:
            try:
                value = entry[1].get(timeout=self.JOB_TIMEOUT)
            except Exception as exc:
                recorder.event("stream.executor.job_failed", repr(exc))
                if self._pool is not None and attempts < self.MAX_RETRIES:
                    recorder.count("stream.executor.job_retries")
                    attempts += 1
                    time.sleep(
                        backoff_delay(
                            attempts,
                            self.RETRY_BASE_DELAY,
                            self.RETRY_MAX_DELAY,
                        )
                    )
                    try:
                        entry[1] = self._pool.apply_async(entry[2], entry[3])
                        continue
                    except Exception as resubmit_exc:
                        recorder.event(
                            "stream.executor.retry_submit_failed",
                            repr(resubmit_exc),
                        )
                # Retries exhausted or the pool is gone.  The abandon
                # sweep resolves this entry along with the rest.
                self._abandon_pool()
                if entry[0] == _JOB:  # pragma: no cover - defensive
                    entry[1] = self._call_with_retry(entry[2], entry[3])
                    entry[0] = _DONE
                    self._release_entry_slot(entry)
                    entry[2] = entry[3] = None
                return
            entry[0] = _DONE
            entry[1] = value
            self._release_entry_slot(entry)
            entry[2] = entry[3] = None
            return

    def _call_with_retry(self, fn, args):
        """Run ``fn(*args)`` inline, retrying transient failures.

        Uses the same capped exponential backoff as the pool path
        (:func:`backoff_delay`); the final attempt's exception
        propagates, so deterministic job errors still reach the caller.
        """
        recorder = get_recorder()
        for attempt in range(self.MAX_RETRIES + 1):
            if attempt:
                recorder.count("stream.executor.job_retries")
                time.sleep(
                    backoff_delay(
                        attempt, self.RETRY_BASE_DELAY, self.RETRY_MAX_DELAY
                    )
                )
            try:
                return fn(*args)
            except Exception as exc:
                recorder.event("stream.executor.job_failed", repr(exc))
                if attempt >= self.MAX_RETRIES:
                    raise
