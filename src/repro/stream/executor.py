"""Parallel compression executor: a worker pool with ordered reassembly.

The streaming writer produces one compression job per (buffer, axis).
After a session's first buffer, MDZ's cross-buffer state is frozen (the
level model and MT reference are fitted once; only ADP's trial counter
advances), so non-trial buffers can be encoded *out of session* by a
worker process given a small state snapshot (:class:`AxisJobSpec`) — with
byte-identical output.  :class:`ParallelExecutor` fans those jobs across a
``multiprocessing`` pool while preserving three invariants:

* **ordering** — results come back strictly in submission order, so the
  writer can append chunk frames as they complete;
* **backpressure** — at most ``max_pending`` jobs are in flight; a full
  queue blocks the producer (the MD loop) instead of buffering an
  unbounded trajectory in memory;
* **graceful degradation** — ``workers <= 1``, a pool that fails to
  start, or a pool that dies mid-stream all fall back to inline serial
  execution of the same job functions, which keeps the output bytes
  unchanged.

Transient failures (a worker killed by the OS, an injected
:class:`OSError`) are retried with capped exponential backoff before the
pool is abandoned: a failed pool job is resubmitted up to
``MAX_RETRIES`` times, and inline execution retries the call the same
way, so a fault that clears (freed memory, returned scratch space)
costs a delay instead of the stream.  Every retry and failure is
counted/logged through :mod:`repro.telemetry`
(``stream.executor.job_retries`` / ``job_failed``).
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..baselines.api import SessionMeta
from ..cluster.level_detect import LevelFit
from ..core.config import MDZConfig
from ..core.mdz import MDZAxisCompressor
from ..telemetry import get_recorder

_DONE = 0  # queue entry already holds its result
_JOB = 1  # queue entry is an outstanding pool job


@dataclass(frozen=True)
class AxisJobSpec:
    """Everything a worker needs to encode one buffer of one axis.

    The spec is the frozen session state exported by
    :meth:`~repro.core.mdz.MDZAxisCompressor.export_session_seed` plus the
    session configuration.  ``reference`` is shipped only for MT (the one
    method that reads it), keeping per-job pickling cost low for VQ/VQT.

    ``trace`` and ``telemetry`` carry the observability context across
    the process boundary: ``trace`` is a span-context token from
    :meth:`~repro.telemetry.tracing.TracingRecorder.export_token` (the
    worker's root span re-parents under it), ``telemetry`` asks for a
    metrics-only sideband.  Either makes :func:`encode_axis_buffer`
    return ``(blob, snapshot)`` instead of bare bytes; the writer folds
    the snapshot into the session recorder on collection.  Both default
    off, so the plain path stays a bare-bytes, zero-overhead job.
    """

    method: str
    error_bound: float
    n_atoms: int
    quantization_scale: int
    sequence_mode: str
    lossless_backend: str
    level_seed: int
    reference: np.ndarray | None
    level_fit: LevelFit | None
    entropy_streams: int | None = None
    trace: tuple | None = None
    telemetry: bool = False


def _encode(spec: AxisJobSpec, batch: np.ndarray) -> bytes:
    """The bare encode: rebuild a fixed-method session, reuse the exact
    serial encode path — which is what makes parallel output
    byte-identical to serial output."""
    config = MDZConfig(
        error_bound=spec.error_bound,
        error_bound_mode="absolute",
        quantization_scale=spec.quantization_scale,
        sequence_mode=spec.sequence_mode,
        method=spec.method,
        lossless_backend=spec.lossless_backend,
        level_seed=spec.level_seed,
        entropy_streams=spec.entropy_streams,
    )
    session = MDZAxisCompressor(config)
    session.begin(spec.error_bound, SessionMeta(n_atoms=spec.n_atoms))
    session.seed_session(spec.reference, spec.level_fit)
    return session.compress_batch(batch)


def encode_axis_buffer(spec: AxisJobSpec, batch: np.ndarray):
    """Encode one (B, N) buffer from a frozen state snapshot.

    Runs in worker processes (and inline in serial mode).  With no
    observability context on the spec, returns the compressed bytes.
    With ``spec.trace``/``spec.telemetry`` set, the job runs under its
    own process-local recorder — a worker cannot mutate the session's
    recorder across the process boundary — and returns
    ``(blob, snapshot)``; traced jobs open a root span whose parent is
    the session-side span that dispatched them, so the merged trace
    nests worker work under the flush that produced it.
    """
    if spec.trace is None and not spec.telemetry:
        return _encode(spec, batch)
    from ..telemetry import MetricsRecorder, recording
    from ..telemetry.tracing import TracingRecorder

    recorder = TracingRecorder() if spec.trace is not None else MetricsRecorder()
    # Install through the context-local slot, not the process-global one:
    # inline fallback jobs may run on several threads at once (the HTTP
    # service feeds tenants from a thread pool), and a global set/restore
    # pair interleaved across threads can resurrect another job's
    # recorder as the "previous" value.  The ContextVar scope is private
    # to this thread's context, so concurrent jobs cannot clobber it.
    with recording(recorder):
        if spec.trace is not None:
            parent, attrs = spec.trace
            with recorder.span(
                "stream.worker.encode_axis", parent=parent, **attrs
            ):
                blob = _encode(spec, batch)
        else:
            blob = _encode(spec, batch)
    return blob, recorder.snapshot()


class ParallelExecutor:
    """FIFO job executor over an optional ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Worker process count.  ``<= 1`` selects inline serial execution
        (no pool, no pickling).
    max_pending:
        Bound on in-flight pool jobs (backpressure).  Defaults to
        ``4 * workers``.

    Usage::

        ex = ParallelExecutor(workers=4)
        ex.submit(fn, arg)            # may block when the queue is full
        ex.push(value)                # inject an already-computed result
        for result in ex.ready():     # completed results, in order
            ...
        for result in ex.drain():     # block for everything else
            ...
        ex.close()
    """

    #: Transient-failure retry policy: a failed job (pool or inline) is
    #: retried up to MAX_RETRIES times, sleeping
    #: ``min(RETRY_BASE_DELAY * 2**attempt, RETRY_MAX_DELAY)`` between
    #: attempts.  Deterministic job errors still surface — they simply
    #: fail every attempt and raise from the final inline run.
    MAX_RETRIES = 2
    RETRY_BASE_DELAY = 0.05
    RETRY_MAX_DELAY = 1.0

    def __init__(self, workers: int = 0, max_pending: int | None = None):
        self.workers = int(workers)
        self._serial = self.workers <= 1
        self.max_pending = (
            int(max_pending) if max_pending else 4 * max(self.workers, 1)
        )
        self._pool = None
        self._broken = False
        # FIFO of [kind, value_or_handle, fn, args]; popped only from the
        # left, which is what guarantees ordered reassembly.
        self._queue: deque[list] = deque()

    # -- lifecycle ------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True while jobs are actually dispatched to a live pool."""
        return not (self._serial or self._broken)

    def _ensure_pool(self) -> None:
        if self._pool is None and self.parallel:
            try:
                self._pool = multiprocessing.get_context().Pool(
                    processes=self.workers
                )
            except Exception as exc:
                get_recorder().event(
                    "stream.executor.pool_start_failed", repr(exc)
                )
                self._abandon_pool()

    def _abandon_pool(self) -> None:
        """Mark the pool dead and re-run every outstanding job inline.

        Handles of a terminated pool never complete, so leaving ``_JOB``
        entries in the queue would hang the next ``drain()``.  The jobs
        are deterministic, so recomputing them preserves the output.
        """
        recorder = get_recorder()
        self._broken = True
        pool, self._pool = self._pool, None
        if pool is not None:
            recorder.count("stream.executor.pool_abandoned")
            try:
                pool.terminate()
                pool.join()
            except Exception as exc:
                # Teardown of an already-dead pool can itself fail; the
                # stream survives either way, but the event must not
                # vanish — production debugging needs to see it happened.
                recorder.event(
                    "stream.executor.pool_teardown_error", repr(exc)
                )
        rerun = 0
        for entry in self._queue:
            if entry[0] == _JOB:
                entry[1] = self._call_with_retry(entry[2], entry[3])
                entry[0] = _DONE
                entry[2] = entry[3] = None
                rerun += 1
        if recorder.enabled and rerun:
            recorder.count("stream.executor.jobs_rerun_inline", rerun)

    def close(self) -> None:
        """Shut the pool down (pending jobs must be drained first)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
            pool.join()

    def terminate(self) -> None:
        """Abandon everything immediately (crash/abort path)."""
        self._queue.clear()
        self._abandon_pool()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()

    # -- submission -----------------------------------------------------

    def push(self, value) -> None:
        """Enqueue an already-computed result, preserving FIFO order.

        The writer uses this for buffers that must be encoded in-session
        (first buffer, ADP trials) so their chunks interleave correctly
        with pool-encoded ones.
        """
        get_recorder().count("stream.executor.pushed")
        self._queue.append([_DONE, value, None, None])

    def submit(self, fn, *args) -> None:
        """Enqueue ``fn(*args)``; blocks while ``max_pending`` jobs are
        in flight.  ``fn`` must be a picklable module-level function."""
        recorder = get_recorder()
        if not self.parallel:
            recorder.count("stream.executor.inline")
            self._queue.append(
                [_DONE, self._call_with_retry(fn, args), None, None]
            )
            return
        self._ensure_pool()
        if not self.parallel:
            recorder.count("stream.executor.inline")
            self._queue.append(
                [_DONE, self._call_with_retry(fn, args), None, None]
            )
            return
        while self._inflight() >= self.max_pending:
            recorder.count("stream.executor.backpressure_waits")
            self._resolve_oldest_job()
        try:
            handle = self._pool.apply_async(fn, args)
        except Exception as exc:
            # Pool died between jobs: degrade to inline execution.
            recorder.event("stream.executor.submit_failed", repr(exc))
            self._abandon_pool()
            self._queue.append(
                [_DONE, self._call_with_retry(fn, args), None, None]
            )
            return
        recorder.count("stream.executor.dispatched")
        self._queue.append([_JOB, handle, fn, args])

    # -- collection -----------------------------------------------------

    def ready(self) -> list:
        """Completed results available right now, in submission order.

        Never blocks: stops at the first entry whose job is still running.
        """
        out = []
        while self._queue:
            entry = self._queue[0]
            if entry[0] == _JOB:
                if not entry[1].ready():
                    break
                self._resolve(entry)
            out.append(self._queue.popleft()[1])
        return out

    def drain(self) -> list:
        """Every outstanding result, in order; blocks until all complete."""
        out = []
        while self._queue:
            entry = self._queue[0]
            if entry[0] == _JOB:
                self._resolve(entry)
            out.append(self._queue.popleft()[1])
        return out

    # -- internals ------------------------------------------------------

    def _inflight(self) -> int:
        return sum(1 for entry in self._queue if entry[0] == _JOB)

    def _resolve_oldest_job(self) -> None:
        for entry in self._queue:
            if entry[0] == _JOB:
                self._resolve(entry)
                return

    #: Upper bound on one pool job (a lost task — e.g. a worker killed by
    #: the OS — would otherwise block ``get()`` forever).
    JOB_TIMEOUT = 600.0

    def _resolve(self, entry: list) -> None:
        """Wait for one pool job; retry on failure, then re-run inline.

        A failed ``get()`` (worker death, job exception, timeout) is
        first retried by resubmitting the job to the pool with backoff;
        only after ``MAX_RETRIES`` resubmissions — or when the pool
        cannot accept jobs at all — is the pool abandoned and the job
        re-run inline, where a genuine job error surfaces to the caller
        while a dead pool is survived transparently.
        """
        recorder = get_recorder()
        attempts = 0
        while True:
            try:
                value = entry[1].get(timeout=self.JOB_TIMEOUT)
            except Exception as exc:
                recorder.event("stream.executor.job_failed", repr(exc))
                if self._pool is not None and attempts < self.MAX_RETRIES:
                    recorder.count("stream.executor.job_retries")
                    time.sleep(
                        min(
                            self.RETRY_BASE_DELAY * 2**attempts,
                            self.RETRY_MAX_DELAY,
                        )
                    )
                    attempts += 1
                    try:
                        entry[1] = self._pool.apply_async(entry[2], entry[3])
                        continue
                    except Exception as resubmit_exc:
                        recorder.event(
                            "stream.executor.retry_submit_failed",
                            repr(resubmit_exc),
                        )
                # Retries exhausted or the pool is gone.  The abandon
                # sweep resolves this entry along with the rest.
                self._abandon_pool()
                if entry[0] == _JOB:  # pragma: no cover - defensive
                    entry[1] = self._call_with_retry(entry[2], entry[3])
                    entry[0] = _DONE
                    entry[2] = entry[3] = None
                return
            entry[0] = _DONE
            entry[1] = value
            entry[2] = entry[3] = None
            return

    def _call_with_retry(self, fn, args):
        """Run ``fn(*args)`` inline, retrying transient failures.

        Uses the same capped exponential backoff as the pool path; the
        final attempt's exception propagates, so deterministic job errors
        still reach the caller.
        """
        recorder = get_recorder()
        for attempt in range(self.MAX_RETRIES + 1):
            if attempt:
                recorder.count("stream.executor.job_retries")
                time.sleep(
                    min(
                        self.RETRY_BASE_DELAY * 2 ** (attempt - 1),
                        self.RETRY_MAX_DELAY,
                    )
                )
            try:
                return fn(*args)
            except Exception as exc:
                recorder.event("stream.executor.job_failed", repr(exc))
                if attempt >= self.MAX_RETRIES:
                    raise
