"""Incremental ``MDZ2`` writer with a snapshot-at-a-time ``feed`` API.

This is the in-situ half of the streaming subsystem: an MD engine hands
over one ``(atoms, axes)`` snapshot per dump step, the writer buffers
``buffer_size`` of them, and every full buffer is compressed per axis and
appended to the container as self-delimiting chunk frames.  Nothing is
ever held beyond the current buffer plus the bounded executor queue, so
memory stays flat over arbitrarily long trajectories, and a crash at any
point leaves a file whose fully written chunks are recoverable
(:mod:`repro.stream.format`).

Error bounds: a value-range-relative bound is resolved against the value
range of the *first* buffer of each axis (the whole trajectory is never
visible at once).  The resolved absolute bounds travel in the header, so
decompression is exact with respect to them regardless of later drift —
drifting values simply fall into the quantizer's out-of-scope side
channel.

Compression jobs are distributed through a
:class:`~repro.stream.executor.ParallelExecutor`: the first buffer and
ADP trial buffers run in-session (they establish or update cross-buffer
state), everything else is dispatched as one batched job per flush —
the batch crosses the process boundary through a shared-memory slot and
workers reuse cached sessions keyed by a state digest — and is
byte-identical to serial execution by construction.

Crash safety: chunk frames are committed atomically against a *fence* —
the end of the last fully written frame.  A chunk write that fails with
:class:`OSError` (torn write, ENOSPC) is rolled back by seeking to the
fence and truncating, then retried with capped exponential backoff; the
file therefore never accumulates a partial frame in front of later data,
and an archive abandoned at any instant is salvageable from its fence.
Fault counters and events flow through :mod:`repro.telemetry`
(``stream.writer.write_retries`` / ``rollbacks`` /
``write_failed``).
"""

from __future__ import annotations

import io
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Iterable

import numpy as np

from ..baselines.api import SessionMeta
from ..core.config import MDZConfig
from ..core.mdz import MDZAxisCompressor
from ..core.registry import DEFAULT_MEMBERS
from ..exceptions import CompressionError
from ..telemetry import QualityAuditor, get_recorder
from . import format as fmt
from .executor import (
    AxisJobSpec,
    FlushJobSpec,
    ParallelExecutor,
    backoff_delay,
    encode_flush,
)


@dataclass
class StreamStats:
    """Running statistics of one streaming compression session."""

    snapshots: int = 0
    buffers: int = 0
    chunks: int = 0
    raw_bytes: int = 0
    bytes_written: int = 0
    compress_seconds: float = 0.0
    #: Bytes per coordinate in the *source* data (set from the first
    #: snapshot's dtype).  ``raw_bytes`` counts the source footprint, so
    #: a float64 producer is no longer under-counted as float32.
    source_itemsize: int = 4
    #: Sampled quality audits run / bound violations they caught (see
    #: :class:`repro.telemetry.quality.QualityAuditor`).
    audits: int = 0
    audit_violations: int = 0

    @property
    def compression_ratio(self) -> float:
        """Raw source footprint over container bytes written so far."""
        return self.raw_bytes / max(self.bytes_written, 1)

    def to_dict(self) -> dict:
        """JSON-serializable form of the session statistics.

        Used by the service's session-close endpoint and
        ``mdz stream --metrics-json`` so every surface reports the same
        fields (the derived ``compression_ratio`` included) instead of
        plucking attributes ad hoc.
        """
        return {
            "snapshots": self.snapshots,
            "buffers": self.buffers,
            "chunks": self.chunks,
            "raw_bytes": self.raw_bytes,
            "bytes_written": self.bytes_written,
            "compress_seconds": self.compress_seconds,
            "compression_ratio": self.compression_ratio,
            "source_itemsize": self.source_itemsize,
            "audits": self.audits,
            "audit_violations": self.audit_violations,
        }


@dataclass
class _PendingChunk:
    buffer_index: int
    axis: int
    rows: int


class StreamingWriter:
    """Append-only ``MDZ2`` writer: ``feed`` snapshots, ``close`` to seal.

    Parameters
    ----------
    target:
        Output path or a writable binary file object (no seeking needed —
        a pipe or socket works).
    config:
        MDZ configuration; ``config.buffer_size`` sets the flush cadence.
    workers:
        Worker processes for the compression pool; ``0``/``1`` = serial.
    executor:
        Inject a pre-built :class:`ParallelExecutor` (ownership stays with
        the caller); overrides ``workers``.
    sync:
        ``fsync`` the output after every committed chunk.  Off by default
        (the OS flushes on close); turn on for in-situ runs where a node
        crash must not lose chunks the writer already reported durable.

    Example
    -------
    >>> with StreamingWriter("run.mdz", MDZConfig(buffer_size=10)) as w:
    ...     for snapshot in simulation:          # (atoms, 3) arrays
    ...         w.feed(snapshot)
    ... # doctest: +SKIP
    """

    #: Chunk-commit retry policy: a failed frame write is rolled back to
    #: the fence and retried up to WRITE_RETRIES times, sleeping
    #: ``backoff_delay(attempt, RETRY_BASE_DELAY, RETRY_MAX_DELAY)`` =
    #: ``min(RETRY_BASE_DELAY * 2**(attempt - 1), RETRY_MAX_DELAY)``
    #: before retry ``attempt`` (capped exponential backoff, same
    #: formula as the executor's job retries).
    WRITE_RETRIES = 3
    RETRY_BASE_DELAY = 0.01
    RETRY_MAX_DELAY = 0.5

    def __init__(
        self,
        target: str | Path | BinaryIO,
        config: MDZConfig | None = None,
        workers: int = 0,
        executor: ParallelExecutor | None = None,
        sync: bool = False,
    ) -> None:
        self.config = config if config is not None else MDZConfig()
        if isinstance(target, (str, Path)):
            self._path: Path | None = Path(target)
            self._fh: BinaryIO = open(target, "wb")
            self._owns_fh = True
        else:
            self._path = None
            self._fh = target
            self._owns_fh = False
        if executor is not None:
            self._executor = executor
            self._owns_executor = False
        else:
            self._executor = ParallelExecutor(workers=workers)
            self._owns_executor = True
        self.stats = StreamStats()
        # Sampled round-trip auditing; deterministic by buffer index so
        # serial and parallel runs audit identical chunks.
        self.auditor = QualityAuditor(self.config.audit_interval)
        # Shared-memory handles of published session state, per digest
        # (None = publish declined; the spec then carries state inline).
        self._state_handles: dict[str, tuple | None] = {}
        self._buffer: list[np.ndarray] = []
        self._pending: deque[_PendingChunk] = deque()
        self._chunks: list[fmt.ChunkEntry] = []
        self._sessions: list[MDZAxisCompressor] | None = None
        self._bounds: list[float] = []
        self._shape: tuple[int, int] | None = None  # (atoms, axes)
        self._buffer_index = 0
        self._offset = 0  # also the commit fence: end of last good frame
        self._rolling = 0  # chained payload CRC32 across committed chunks
        self._sync = bool(sync)
        self._closed = False

    # -- feeding --------------------------------------------------------

    def feed(self, snapshot: np.ndarray) -> None:
        """Buffer one ``(atoms, axes)`` (or ``(atoms,)``) snapshot.

        Triggers a buffer flush — and, in parallel mode, chunk writes for
        any jobs that completed in the background — when due.
        """
        if self._closed:
            raise CompressionError("writer is closed")
        arr = np.asarray(snapshot, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2:
            raise CompressionError(
                f"expected an (atoms, axes) snapshot, got shape "
                f"{np.shape(snapshot)}"
            )
        if not np.isfinite(arr).all():
            raise CompressionError("input contains non-finite values")
        if self._shape is None:
            if arr.size == 0:
                raise CompressionError("cannot compress empty snapshots")
            self._shape = arr.shape
            # Record the producer's true itemsize before the float64
            # working coercion: raw_bytes must reflect the source
            # footprint, not a hardcoded float32 convention.
            source_dtype = getattr(snapshot, "dtype", None)
            self.stats.source_itemsize = (
                int(source_dtype.itemsize)
                if source_dtype is not None
                else int(arr.dtype.itemsize)
            )
        elif arr.shape != self._shape:
            raise CompressionError(
                f"snapshot shape {arr.shape} does not match the stream's "
                f"{self._shape}"
            )
        self._buffer.append(arr)
        self.stats.snapshots += 1
        self.stats.raw_bytes += arr.size * self.stats.source_itemsize
        recorder = get_recorder()
        if recorder.enabled:
            # Rolling-window throughput for /metrics and `mdz top`:
            # together with stream.chunk_bytes this gives raw-in vs
            # compressed-out rates without touching StreamStats.
            recorder.count("stream.raw_bytes", arr.size * self.stats.source_itemsize)
            recorder.count("stream.snapshots")
        if len(self._buffer) >= self.config.buffer_size:
            self._flush()
        else:
            self._collect(block=False)

    def feed_many(self, snapshots: Iterable[np.ndarray]) -> None:
        """Feed an iterable of snapshots (or a ``(T, N, axes)`` array)."""
        for snapshot in snapshots:
            self.feed(snapshot)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> StreamStats:
        """Flush the partial buffer, seal the footer, release resources.

        Idempotent: later calls return the final stats unchanged.  A
        never-fed stream cannot be finalized; when the writer opened the
        output path itself, the useless partial file is removed before
        the error propagates, so no unreadable 0-byte container is left
        behind.
        """
        if self._closed:
            return self.stats
        if self._buffer:
            self._flush()
        if self._sessions is None:
            self._release()
            self._discard_partial_file()
            raise CompressionError("cannot finalize an empty stream")
        start = time.perf_counter()
        with get_recorder().timer("stream.close_drain"):
            self._collect(block=True)
        self.stats.compress_seconds += time.perf_counter() - start
        self._offset += fmt.write_footer(
            self._fh, self._chunks, self.stats.snapshots, self._offset
        )
        self._fh.flush()
        self.stats.bytes_written = self._offset
        self._release()
        return self.stats

    def abort(self) -> None:
        """Stop without writing the footer (simulates/handles a crash).

        The file keeps every chunk written so far and remains readable
        with ``StreamingReader(..., recover=True)``.
        """
        if self._closed:
            return
        if self._owns_executor:
            self._executor.terminate()
        self._fh.flush()
        self._release()

    def __enter__(self) -> "StreamingWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # On an exception, leave a recoverable (footer-less) file rather
        # than sealing a stream the producer considers incomplete.
        if exc_type is None:
            self.close()
        else:
            self.abort()

    # -- internals ------------------------------------------------------

    def _release(self) -> None:
        self._closed = True
        self._buffer.clear()
        self.auditor.clear()
        if self._owns_executor:
            self._executor.close()
        if self._owns_fh:
            self._fh.close()

    def _discard_partial_file(self) -> None:
        """Remove an owned output file that never received valid content."""
        if not (self._owns_fh and self._path is not None):
            return
        try:
            self._path.unlink()
        except OSError as exc:
            get_recorder().event("stream.writer.unlink_failed", repr(exc))

    def _start(self, batch: np.ndarray) -> None:
        """First flush: resolve bounds, open sessions, write the header."""
        n_atoms, n_axes = self._shape
        self._bounds = []
        self._sessions = []
        for a in range(n_axes):
            axis = batch[:, :, a]
            bound = self.config.absolute_bound(
                float(axis.max() - axis.min())
            )
            session = MDZAxisCompressor(self.config)
            session.begin(bound, SessionMeta(n_atoms=n_atoms))
            self._bounds.append(bound)
            self._sessions.append(session)
        header = {
            "atoms": n_atoms,
            "axes": n_axes,
            "buffer_size": self.config.buffer_size,
            "error_bounds": self._bounds,
            "scale": self.config.quantization_scale,
            "sequence": self.config.sequence_mode,
            "method": self.config.method,
            "lossless": self.config.lossless_backend,
        }
        # Same rule as io/container.py: only a non-default ADP pool is
        # recorded, so default streams stay byte-identical to the seed.
        if (
            self.config.method == "adp"
            and self.config.adp_members != DEFAULT_MEMBERS
        ):
            header["members"] = list(self.config.adp_members)
        self._offset += fmt.write_magic(self._fh)
        self._offset += fmt.write_header(self._fh, header)

    def _flush(self) -> None:
        recorder = get_recorder()
        start = time.perf_counter()
        batch = np.stack(self._buffer)  # (B, N, axes)
        self._buffer.clear()
        if self._sessions is None:
            self._start(batch)
        rows = batch.shape[0]
        with recorder.span("stream.flush", buffer=self._buffer_index):
            # One contiguous (axes, B, N) block: per-axis contiguous
            # views for the in-session path, and the ready-to-ship
            # payload for dispatched axes (copied once into a
            # shared-memory slot, or pickled whole as the fallback).
            axes_block = np.ascontiguousarray(np.moveaxis(batch, 2, 0))
            dispatch: list[tuple[int, AxisJobSpec]] = []
            for a in range(batch.shape[2]):
                session = self._sessions[a]
                axis_batch = axes_block[a]
                # Sampled buffers keep a copy of their original values
                # until the encoded chunk lands (see _collect); the stash
                # is the only extra memory auditing costs.
                self.auditor.stash(self._buffer_index, a, axis_batch)
                method = session.pending_method()
                if method is None:
                    # First buffer or ADP trial: must run in-session, where
                    # it establishes the reference/level model or re-picks
                    # the method for the following buffers.  Flush any
                    # dispatchable axes accumulated so far first, so the
                    # executor queue stays aligned with self._pending.
                    self._dispatch(dispatch, axes_block)
                    with recorder.span(
                        "stream.encode.axis",
                        axis=a,
                        buffer=self._buffer_index,
                        mode="session",
                    ):
                        blob = session.compress_batch(axis_batch)
                    self._executor.push(blob)
                else:
                    dispatch.append(
                        (a, self._job_spec(a, session, method, recorder))
                    )
                    session.note_external_buffer()
                self._pending.append(
                    _PendingChunk(
                        buffer_index=self._buffer_index, axis=a, rows=rows
                    )
                )
            self._dispatch(dispatch, axes_block)
        self._buffer_index += 1
        self.stats.buffers += 1
        self._collect(block=False)
        elapsed = time.perf_counter() - start
        self.stats.compress_seconds += elapsed
        if recorder.enabled:
            recorder.observe("stream.flush", elapsed)

    def _job_spec(
        self, axis: int, session: MDZAxisCompressor, method: str, recorder
    ) -> AxisJobSpec:
        """Build the out-of-session job spec for one axis.

        The frozen session state travels by the cheapest available
        route: it is pickled and published to a shared-memory segment
        once per state digest (workers cache the rebuilt session under
        the digest, so most jobs transfer nothing at all); when
        publishing is declined — serial mode, shared memory unavailable
        — the spec carries the state inline exactly as before.
        """
        reference, level_fit, digest = session.export_session_state(method)
        if digest not in self._state_handles:
            self._state_handles[digest] = self._executor.publish(
                pickle.dumps(
                    (reference, level_fit), pickle.HIGHEST_PROTOCOL
                )
            )
        handle = self._state_handles[digest]
        return AxisJobSpec(
            method=method,
            error_bound=session.error_bound,
            n_atoms=self._shape[0],
            quantization_scale=self.config.quantization_scale,
            sequence_mode=self.config.sequence_mode,
            lossless_backend=self.config.lossless_backend,
            level_seed=self.config.level_seed,
            # State ships through the published segment when available;
            # the reference is None unless the method's registry entry
            # needs it (export_session_state already applies that rule).
            reference=None if handle is not None else reference,
            level_fit=None if handle is not None else level_fit,
            entropy_streams=self.config.entropy_streams,
            # Span token: the worker's root span re-parents under this
            # flush (None on non-tracing recorders).
            trace=recorder.export_token(
                axis=axis, buffer=self._buffer_index, mode="worker"
            ),
            telemetry=recorder.enabled,
            state_digest=digest,
            state_shm=handle,
        )

    def _dispatch(
        self, dispatch: list[tuple[int, AxisJobSpec]], axes_block: np.ndarray
    ) -> None:
        """Submit accumulated axis jobs as one batched flush job.

        One :class:`FlushJobSpec` carries every dispatched axis of the
        flush — a single IPC round trip.  The payload travels through a
        shared-memory ring slot when the executor can provide one
        (``stream.executor.shm_bytes`` counts the copied bytes); the
        fallback ships the stacked array pickled, and serial mode runs
        the same job inline.  ``dispatch`` is consumed.
        """
        if not dispatch:
            return
        axes = [a for a, _ in dispatch]
        jobs = tuple(spec for _, spec in dispatch)
        dispatch.clear()
        if axes == list(range(axes_block.shape[0])):
            payload = axes_block  # whole flush: already the right block
        else:
            payload = np.ascontiguousarray(axes_block[axes])
        slot = self._executor.acquire_slot(payload.nbytes)
        if slot is not None:
            desc = slot.pack(payload)
            get_recorder().count(
                "stream.executor.shm_bytes", payload.nbytes
            )
            self._executor.submit(
                encode_flush, FlushJobSpec(jobs=jobs, shm=desc), None,
                slot=slot,
            )
        else:
            self._executor.submit(
                encode_flush, FlushJobSpec(jobs=jobs), payload
            )

    def _collect(self, block: bool) -> None:
        """Append chunk frames for every completed compression job."""
        recorder = get_recorder()
        results = self._executor.drain() if block else self._executor.ready()
        for result in results:
            # A batched flush job resolves to the list of its per-axis
            # results; an in-session push is a single payload.
            for blob in result if type(result) is list else (result,):
                if type(blob) is tuple:
                    # Observability sideband from an out-of-session job:
                    # (bytes, recorder snapshot).  Fold the worker's
                    # metrics, spans, and provenance into the session
                    # recorder; the spans were already parented under our
                    # flush span via the job-spec token.
                    blob, sideband = blob
                    merge = getattr(recorder, "merge", None)
                    if merge is not None:
                        merge(sideband)
                meta = self._pending.popleft()
                written = self._commit_chunk(meta, blob)
                self.stats.chunks += 1
                if recorder.enabled:
                    recorder.count("stream.chunks_written")
                    recorder.count("stream.chunk_bytes", written)
                original = self.auditor.pop(meta.buffer_index, meta.axis)
                if original is not None:
                    report = self.auditor.audit(
                        self._sessions[meta.axis],
                        blob,
                        original,
                        buffer_index=meta.buffer_index,
                        axis=meta.axis,
                    )
                    self.stats.audits += 1
                    if not report.within_bound:
                        self.stats.audit_violations += 1
        if recorder.enabled:
            # Chunks compressed (or in flight) but not yet on disk.
            recorder.gauge("stream.queue_depth", len(self._pending))
        self.stats.bytes_written = self._offset

    def _commit_chunk(self, meta: _PendingChunk, payload: bytes) -> int:
        """Atomically append one chunk frame; returns bytes written.

        ``self._offset`` is the commit fence: it only advances when a
        frame lands completely.  A failed attempt (torn write, injected
        ``OSError``, ENOSPC) is rolled back by truncating to the fence
        and retried with capped exponential backoff; when the target
        cannot seek (pipe, socket) the rollback is impossible, so the
        error propagates immediately — the salvage scan still recovers
        everything up to the fence.

        Raises :class:`CompressionError` (chaining the last ``OSError``)
        after ``WRITE_RETRIES`` failed attempts, leaving the file rolled
        back to the fence, i.e. a valid recoverable archive.
        """
        recorder = get_recorder()
        last_exc: OSError | None = None
        for attempt in range(self.WRITE_RETRIES + 1):
            if attempt:
                recorder.count("stream.writer.write_retries")
                recorder.event(
                    "stream.writer.retry",
                    f"chunk (buffer {meta.buffer_index}, axis {meta.axis}) "
                    f"attempt {attempt + 1}: {last_exc!r}",
                )
                time.sleep(
                    backoff_delay(
                        attempt, self.RETRY_BASE_DELAY, self.RETRY_MAX_DELAY
                    )
                )
            try:
                entry, written = fmt.write_chunk(
                    self._fh,
                    meta.buffer_index,
                    meta.axis,
                    meta.rows,
                    payload,
                    self._offset,
                    self._rolling,
                )
                self._fh.flush()
                if self._sync:
                    self._fsync()
            except OSError as exc:
                last_exc = exc
                if not self._rollback_to_fence():
                    break  # unseekable target: cannot safely retry
                continue
            self._chunks.append(entry)
            self._offset += written
            self._rolling = entry.rolling
            return written
        recorder.event("stream.writer.write_failed", repr(last_exc))
        raise CompressionError(
            f"chunk (buffer {meta.buffer_index}, axis {meta.axis}) could "
            f"not be written after {self.WRITE_RETRIES + 1} attempts: "
            f"{last_exc}"
        ) from last_exc

    def _rollback_to_fence(self) -> bool:
        """Truncate the output back to the last committed frame.

        Returns False when the target does not support seek/truncate
        (pipes, sockets) or the rollback itself failed — in both cases a
        retry would append after garbage, so the caller must give up.
        """
        try:
            self._fh.seek(self._offset)
            self._fh.truncate()
        except (OSError, ValueError, AttributeError, io.UnsupportedOperation):
            return False
        get_recorder().count("stream.writer.rollbacks")
        return True

    def _fsync(self) -> None:
        """Force the committed frame to stable storage (``sync=True``)."""
        fileno = getattr(self._fh, "fileno", None)
        if fileno is None:
            return
        try:
            os.fsync(fileno())
        except (OSError, ValueError, io.UnsupportedOperation):
            pass  # in-memory targets have no backing descriptor
