"""Streaming compression subsystem: the chunked ``MDZ2`` container, a
parallel compression executor, and the in-situ pipeline.

The monolithic front end (:class:`repro.core.mdz.MDZ` +
:mod:`repro.io.container`) needs the whole trajectory in memory and
produces one ``MDZ1`` blob.  This package replaces that execution model
for production use:

* :mod:`repro.stream.format` — the append-only ``MDZ2`` frame layout
  (CRC-checked self-delimiting chunks, footer index, crash recovery);
* :mod:`repro.stream.writer` — :class:`StreamingWriter`, a
  ``feed(snapshot)`` front end with incremental per-buffer flushing;
* :mod:`repro.stream.reader` — :class:`StreamingReader`, random-access
  and sequential decoding, with opt-in recovery of truncated files;
* :mod:`repro.stream.executor` — :class:`ParallelExecutor`, a
  ``multiprocessing`` pool with bounded backpressure and ordered
  reassembly whose output is byte-identical to serial execution;
* :mod:`repro.stream.pipeline` — one-call helpers tying it together.
"""

from .executor import AxisJobSpec, ParallelExecutor, encode_axis_buffer
from .format import (
    ChunkEntry,
    StreamLayout,
    is_stream_container,
    parse_stream,
)
from .pipeline import stream_compress, stream_compress_dump, stream_decompress
from .reader import StreamingReader
from .writer import StreamingWriter, StreamStats

__all__ = [
    "AxisJobSpec",
    "ChunkEntry",
    "ParallelExecutor",
    "StreamLayout",
    "StreamingReader",
    "StreamingWriter",
    "StreamStats",
    "encode_axis_buffer",
    "is_stream_container",
    "parse_stream",
    "stream_compress",
    "stream_compress_dump",
    "stream_decompress",
]
