"""Streaming compression subsystem: the chunked ``MDZ2`` container, a
parallel compression executor, and the in-situ pipeline.

The monolithic front end (:class:`repro.core.mdz.MDZ` +
:mod:`repro.io.container`) needs the whole trajectory in memory and
produces one ``MDZ1`` blob.  This package replaces that execution model
for production use:

* :mod:`repro.stream.format` — the append-only ``MDZ2`` frame layout
  (CRC-checked self-delimiting chunks, footer index, crash recovery);
* :mod:`repro.stream.writer` — :class:`StreamingWriter`, a
  ``feed(snapshot)`` front end with incremental per-buffer flushing;
* :mod:`repro.stream.reader` — :class:`StreamingReader`, random-access
  and sequential decoding, with opt-in recovery of truncated files;
* :mod:`repro.stream.executor` — :class:`ParallelExecutor`, a
  ``multiprocessing`` pool with bounded backpressure and ordered
  reassembly whose output is byte-identical to serial execution;
* :mod:`repro.stream.pipeline` — one-call helpers tying it together.

Fault tolerance lives at three layers: the writer commits chunk frames
atomically against a fence (rolled back and retried on ``OSError``),
the executor retries failed worker jobs with capped backoff before
degrading inline, and the reader's salvage mode skips damaged frames
and accounts for exactly which snapshots were lost
(:class:`~repro.stream.reader.SalvageReport`).  :mod:`repro.faults`
exercises all of it deterministically.
"""

from .executor import (
    AxisJobSpec,
    FlushJobSpec,
    ParallelExecutor,
    backoff_delay,
    encode_axis_buffer,
    encode_flush,
)
from .format import (
    ChunkEntry,
    Quarantine,
    StreamLayout,
    is_stream_container,
    parse_stream,
    repair_stream,
    verify_stream,
)
from .pipeline import stream_compress, stream_compress_dump, stream_decompress
from .reader import BufferStatus, SalvageReport, StreamingReader
from .writer import StreamingWriter, StreamStats

__all__ = [
    "AxisJobSpec",
    "BufferStatus",
    "ChunkEntry",
    "FlushJobSpec",
    "ParallelExecutor",
    "backoff_delay",
    "Quarantine",
    "SalvageReport",
    "StreamLayout",
    "StreamingReader",
    "StreamingWriter",
    "StreamStats",
    "encode_axis_buffer",
    "encode_flush",
    "is_stream_container",
    "parse_stream",
    "repair_stream",
    "stream_compress",
    "stream_compress_dump",
    "stream_decompress",
    "verify_stream",
]
