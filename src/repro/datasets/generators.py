"""Generators for the eight MD dataset analogs (Table I).

Every generator returns ``(positions, box)`` with ``positions`` of shape
(snapshots, atoms, 3) in float32 (the SDRBench convention for MD data) and
``box`` the periodic box lengths used for RDF analysis.

The parameters below were tuned against Section V's characterization:

* Copper/Helium/Pt — crystalline level structure (multi-peak histograms,
  Takeaway 2) with per-axis vibration amplitude and temporal correlation
  matching each dataset's Figure 3/5 class;
* Copper-B gains a z-axis drift after snapshot 400, reproducing the
  long-term pattern change that drives the ADP switch of Figure 10;
* ADK/IFABP — Rouse-chain protein plus explicit solvent: spatially random
  (uniform histogram) with the protein's temporal correlation;
* Pt — an FCC slab with rarely-hopping adatoms: stair-wise spatial pattern
  and an extremely smooth time dimension (Takeaway 4);
* LJ — a *real* Lennard-Jones liquid integrated with
  :class:`repro.md.simulation.MDSimulation` at the LAMMPS benchmark state
  point (rho* = 0.8442, T* = 1.44), dumped frequently.
"""

from __future__ import annotations

import numpy as np

from ..md.lattice import bcc_lattice, fcc_lattice, surface_slab
from ..md.models import DefectHoppingModel, EinsteinCrystalModel, RouseChainModel
from ..md.simulation import MDSimulation
from .spec import DatasetSpec

#: Lattice constants (Angstrom).
_A_COPPER = 3.615
_A_TUNGSTEN = 3.165
_A_PLATINUM = 3.924


def generate_copper_a(spec: DatasetSpec, rng: np.random.Generator):
    """Large solid copper block: stable zigzag levels, smooth in time."""
    lat = fcc_lattice((13, 13, 13), _A_COPPER)
    model = EinsteinCrystalModel(
        sites=lat.positions,
        amplitude=[0.10, 0.10, 0.10],
        correlation=[0.95, 0.95, 0.95],
        hop_rate=0.0002,
        hop_distance=_A_COPPER / 2,
    )
    frames = model.generate(spec.snapshots, rng)
    return frames.astype(np.float32), lat.box


def generate_copper_b(spec: DatasetSpec, rng: np.random.Generator):
    """Small copper cell, long trajectory, with a late regime change.

    x/y vibrate with fast decorrelation (Figure 5 class 1 — VQ's regime,
    Table VI); z is smoother.  After snapshot 400 a z drift sets in: the
    long-term pattern change flips the best method on that axis, giving
    ADP the method crossover that Figure 10 (a) illustrates (see the
    fig10 benchmark for which method wins on which side here).
    """
    lat = fcc_lattice((10, 10, 8), _A_COPPER)
    sites = lat.positions[: spec.atoms]
    model = EinsteinCrystalModel(
        sites=sites,
        amplitude=[0.025, 0.025, 0.015],
        correlation=[0.05, 0.05, 0.85],
        hop_rate=0.001,
        hop_distance=_A_COPPER / 2,
    )
    frames = model.generate(spec.snapshots, rng)
    switch = min(400, spec.snapshots)
    if spec.snapshots > switch:
        steps = rng.normal(
            0.02, 0.006, spec.snapshots - switch
        ).clip(min=0.0)
        drift = np.cumsum(steps)
        frames[switch:, :, 2] += drift[:, None]
    return frames.astype(np.float32), lat.box


def generate_helium_a(spec: DatasetSpec, rng: np.random.Generator):
    """Tungsten matrix with a growing helium bubble: erratic zigzag."""
    lat = bcc_lattice((14, 14, 14), _A_TUNGSTEN)
    sites = lat.positions[: spec.atoms].copy()
    n = sites.shape[0]
    # Frozen disorder makes the zigzag erratic (Figure 3 (c)).
    sites += rng.normal(0.0, 0.25, sites.shape)
    center = lat.box / 2.0
    dist = np.linalg.norm(sites - center, axis=1)
    bubble = dist < 0.18 * float(lat.box.min())
    model = EinsteinCrystalModel(
        sites=sites,
        amplitude=[0.08, 0.08, 0.08],
        correlation=[0.93, 0.93, 0.93],
    )
    frames = model.generate(spec.snapshots, rng)
    # The bubble region swells slowly: radial displacement growing with
    # time, smooth between saves (helium insertion pushes the matrix out).
    growth = np.linspace(0.0, 1.0, spec.snapshots) ** 0.7
    radial = sites[bubble] - center
    radial /= np.maximum(np.linalg.norm(radial, axis=1, keepdims=True), 1e-9)
    swell = 0.9 * growth[:, None, None] * radial[None, :, :]
    frames[:, bubble, :] += swell
    return frames.astype(np.float32), lat.box


def generate_helium_b(spec: DatasetSpec, rng: np.random.Generator):
    """Small vacancy/helium cluster cell: level hopping defects."""
    lat = bcc_lattice((8, 8, 8), _A_TUNGSTEN)
    extra = spec.atoms - lat.n_atoms
    # Helium atoms occupy tetrahedral-ish interstitial sites.
    inter = rng.uniform(0.0, lat.box, size=(max(extra, 0), 3))
    sites = np.vstack([lat.positions, inter])[: spec.atoms]
    model = DefectHoppingModel(
        sites=sites,
        amplitude=0.045,
        correlation=0.30,
        n_defects=max(extra, 8),
        defect_hop_rate=0.4,
        hop_distance=_A_TUNGSTEN / 2,
    )
    frames = model.generate(spec.snapshots, rng)
    return frames.astype(np.float32), lat.box


def generate_adk(spec: DatasetSpec, rng: np.random.Generator):
    """Adenylate kinase in explicit water: random spatial structure.

    Saves are 240 ps apart in the original — far beyond the protein's fast
    motions — so successive snapshots differ substantially (Figure 5
    class 1): low mode correlation, mobile solvent.
    """
    n_solvent = spec.atoms - 341
    model = RouseChainModel(
        n_beads=341,
        n_chains=1,
        n_solvent=n_solvent,
        radius=17.0,
        base_correlation=0.60,
        mode_sigma=3.0,
        local_correlation=0.15,
        box=56.0,
        solvent_step=2.2,
    )
    frames = model.generate(spec.snapshots, rng)
    box = np.full(3, 56.0)
    return frames.astype(np.float32), box


def generate_ifabp(spec: DatasetSpec, rng: np.random.Generator):
    """I-FABP in water, 1 ps saves: random space, moderate time changes."""
    n_solvent = spec.atoms - 445
    model = RouseChainModel(
        n_beads=445,
        n_chains=1,
        n_solvent=n_solvent,
        radius=16.0,
        base_correlation=0.90,
        mode_sigma=2.0,
        local_sigma=0.9,
        local_correlation=0.75,
        box=56.0,
        solvent_step=0.15,
    )
    frames = model.generate(spec.snapshots, rng)
    box = np.full(3, 56.0)
    return frames.astype(np.float32), box


def generate_pt(spec: DatasetSpec, rng: np.random.Generator):
    """Pt surface with diffusing adatoms: stair-wise z, near-static time."""
    n_adatoms = 20
    lat = surface_slab(
        (13, 13, 13),
        _A_PLATINUM,
        vacuum_layers=4,
        n_adatoms=n_adatoms,
        rng=rng,
    )
    model = EinsteinCrystalModel(
        sites=lat.positions,
        amplitude=[0.03, 0.03, 0.03],
        correlation=[0.97, 0.97, 0.97],
    )
    frames = model.generate(spec.snapshots, rng)
    # Adatoms hop on the surface lattice occasionally (local hyperdynamics
    # makes such events rare on the saving timescale).
    ad = np.arange(lat.n_atoms - n_adatoms, lat.n_atoms)
    offset = np.zeros((n_adatoms, 2))
    for t in range(1, spec.snapshots):
        hops = rng.random(n_adatoms) < 0.02
        if hops.any():
            k = int(hops.sum())
            axes = rng.integers(0, 2, k)
            signs = rng.choice([-1.0, 1.0], k)
            step = np.zeros((k, 2))
            step[np.arange(k), axes] = signs * _A_PLATINUM / 2
            offset[hops] += step
        frames[t, ad, :2] += offset
    return frames.astype(np.float32), lat.box


def generate_lj(spec: DatasetSpec, rng: np.random.Generator):
    """Real MD: the LAMMPS Lennard-Jones benchmark state point.

    FCC melt at rho* = 0.8442, T* = 1.44 (reduced units), velocity-Verlet
    with a Langevin thermostat; 60 equilibration steps then one dump per
    step.  Frequent saves leave inter-snapshot displacements below the
    headline error bound — the extreme temporal smoothness of Figure 5 (f)
    behind MT's headline margin.  (At the paper's 6.9M-atom scale the box —
    and so the value-range-relative bound — is 10x larger relative to the
    per-save atomic motion; the scale note in EXPERIMENTS.md quantifies the
    effect on the reproducible margin.)
    """
    a = (4.0 / 0.8442) ** (1.0 / 3.0)
    cells = round((spec.atoms / 4) ** (1.0 / 3.0))
    lat = fcc_lattice((cells,) * 3, a)
    sim = MDSimulation(
        lat.positions,
        lat.box,
        temperature=1.44,
        dt=0.005,
        seed=int(rng.integers(0, 2**31)),
    )
    sim.run(400)  # melt the initial lattice fully
    frames = np.empty((spec.snapshots, lat.n_atoms, 3))
    collected = 0

    def grab(step: int, pos: np.ndarray) -> float:
        nonlocal collected
        if collected < spec.snapshots:
            frames[collected] = pos
            collected += 1
        return 0.0

    sim.run(spec.snapshots, dump_every=1, dump_callback=grab)
    # Unwrap across the periodic boundary so trajectories are continuous
    # in time (LAMMPS dumps unwrapped coordinates for trajectory output).
    jumps = np.diff(frames, axis=0)
    jumps -= lat.box * np.rint(jumps / lat.box)
    frames[1:] = frames[0] + np.cumsum(jumps, axis=0)
    return frames.astype(np.float32), lat.box


#: name -> generator
GENERATORS = {
    "copper-a": generate_copper_a,
    "copper-b": generate_copper_b,
    "helium-a": generate_helium_a,
    "helium-b": generate_helium_b,
    "adk": generate_adk,
    "ifabp": generate_ifabp,
    "pt": generate_pt,
    "lj": generate_lj,
}
