"""Dataset specifications: paper metadata plus scaled generation sizes.

Table I of the paper, with each dataset's original size preserved as
metadata and the generated size scaled to what a single-core Python
reproduction can sweep.  The ``original_atoms`` field drives the baseline
capability checks, so TNG still refuses Pt/LJ and HRTC refuses
Copper-A/Helium-A/Pt/LJ even though the generated streams are small
(Section VII-A5).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one evaluation dataset.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"copper-b"``).
    state:
        Physical state reported in Table I.
    code:
        Simulation code used by the paper.
    paper_snapshots / paper_atoms:
        Original sizes from Table I.
    snapshots / atoms:
        Generated (scaled) sizes.
    temporal_class:
        ``"large"`` (Figure 5 class 1: changes relatively large/frequent)
        or ``"smooth"`` (class 2).
    spatial_pattern:
        The Figure 3 pattern label.
    seed:
        Deterministic generation seed.
    """

    name: str
    state: str
    code: str
    paper_snapshots: int
    paper_atoms: int
    snapshots: int
    atoms: int
    temporal_class: str
    spatial_pattern: str
    seed: int


#: Table I, scaled.  Atom counts marked with the original value keep the
#: paper's exact N where it is already laptop-sized.
DATASET_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="copper-a",
            state="Solid",
            code="LAMMPS",
            paper_snapshots=83,
            paper_atoms=1_077_290,
            snapshots=83,
            atoms=8788,  # fcc 13^3 cells
            temporal_class="smooth",
            spatial_pattern="stable-zigzag",
            seed=101,
        ),
        DatasetSpec(
            name="copper-b",
            state="Solid",
            code="LAMMPS",
            paper_snapshots=5423,
            paper_atoms=3137,
            snapshots=560,
            atoms=3137,  # paper size kept
            temporal_class="large",
            spatial_pattern="stable-zigzag",
            seed=102,
        ),
        DatasetSpec(
            name="helium-a",
            state="Plasma",
            code="LAMMPS",
            paper_snapshots=2338,
            paper_atoms=106_711,
            snapshots=200,
            atoms=5488,  # bcc 14^3 cells
            temporal_class="smooth",
            spatial_pattern="erratic-zigzag",
            seed=103,
        ),
        DatasetSpec(
            name="helium-b",
            state="Plasma",
            code="EXAALT",
            paper_snapshots=7852,
            paper_atoms=1037,
            snapshots=800,
            atoms=1037,  # paper size kept
            temporal_class="large",
            spatial_pattern="stable-zigzag",
            seed=104,
        ),
        DatasetSpec(
            name="adk",
            state="Protein",
            code="CHARMM",
            paper_snapshots=4187,
            paper_atoms=3341,
            snapshots=420,
            atoms=3341,  # paper size kept
            temporal_class="large",
            spatial_pattern="random",
            seed=105,
        ),
        DatasetSpec(
            name="ifabp",
            state="Protein",
            code="CHARMM",
            paper_snapshots=500,
            paper_atoms=12_445,
            snapshots=120,
            atoms=12_445,  # paper size kept
            temporal_class="large",
            spatial_pattern="random",
            seed=106,
        ),
        DatasetSpec(
            name="pt",
            state="Solid",
            code="LAMMPS",
            paper_snapshots=300,
            paper_atoms=2_371_092,
            snapshots=150,
            atoms=8808,  # fcc slab + 20 adatoms
            temporal_class="smooth",
            spatial_pattern="stair-wise",
            seed=107,
        ),
        DatasetSpec(
            name="lj",
            state="Liquid",
            code="LAMMPS",
            paper_snapshots=50,
            paper_atoms=6_912_000,
            snapshots=50,
            atoms=6912,  # the paper's cell / 1000 (real MD run)
            temporal_class="smooth",
            spatial_pattern="uniform",
            seed=108,
        ),
        DatasetSpec(
            name="hacc-1",
            state="Cosmology",
            code="HACC",
            paper_snapshots=30,
            paper_atoms=15_767_098,
            snapshots=30,
            atoms=20_000,
            temporal_class="smooth",
            spatial_pattern="uniform",
            seed=109,
        ),
        DatasetSpec(
            name="hacc-2",
            state="Cosmology",
            code="HACC",
            paper_snapshots=80,
            paper_atoms=13_131_491,
            snapshots=60,
            atoms=13_000,
            temporal_class="smooth",
            spatial_pattern="uniform",
            seed=110,
        ),
    ]
}

#: The eight MD datasets of the main evaluation (Figures 11/12/15).
MD_DATASETS = (
    "copper-a",
    "copper-b",
    "helium-a",
    "helium-b",
    "adk",
    "ifabp",
    "pt",
    "lj",
)

#: The generalizability datasets of Figure 16.
HACC_DATASETS = ("hacc-1", "hacc-2")
