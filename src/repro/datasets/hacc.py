"""HACC cosmology dataset analogs (Figure 16, generalizability).

HACC is an extreme-scale cosmological N-body code; the paper uses two of
its particle snapsh 'ot sequences to show MDZ generalizes beyond MD.  A
direct-gravity integration of tens of thousands of particles is out of
reach in Python, so we generate structure formation with the *Zel'dovich
approximation* — the standard first-order Lagrangian perturbation theory
behind every cosmological initial-conditions generator:

    x(q, t) = q + D(t) * psi(q)

Particles start on a uniform lattice (Lagrangian coordinates q), and the
displacement field psi is the gradient of a Gaussian random potential with
a power-law spectrum; the growth factor D(t) increases monotonically over
the snapshots.  The result is exactly the regime Figure 16 probes: no
discrete levels (uniform histogram), unstructured space, and smooth
coherent motion in time.  The substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from .spec import DatasetSpec


def _displacement_field(
    grid: int, box: float, rng: np.random.Generator, spectral_index: float
) -> np.ndarray:
    """Zel'dovich displacement field on a grid (grid^3, 3) via FFT.

    The potential has power spectrum ``P(k) ~ k^{spectral_index}`` with a
    cutoff at the Nyquist frequency; the displacement is its gradient.
    """
    k1 = np.fft.fftfreq(grid, d=box / grid) * 2.0 * np.pi
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    k_sq = kx**2 + ky**2 + kz**2
    k_sq[0, 0, 0] = 1.0
    amplitude = k_sq ** (spectral_index / 4.0)  # sqrt(P) for the potential
    amplitude[0, 0, 0] = 0.0
    noise = rng.standard_normal((grid,) * 3)
    phi_k = np.fft.fftn(noise) * amplitude
    psi = np.empty((grid, grid, grid, 3))
    for axis, k_axis in enumerate((kx, ky, kz)):
        psi[..., axis] = np.real(np.fft.ifftn(1j * k_axis * phi_k))
    # Normalize to unit RMS displacement per axis.
    rms = psi.std()
    if rms > 0:
        psi /= rms
    return psi.reshape(-1, 3)


def generate_hacc(spec: DatasetSpec, rng: np.random.Generator):
    """One HACC-like particle sequence: (T, N, 3) float32 + box."""
    box = 256.0  # Mpc/h-flavoured length units
    grid = int(round(spec.atoms ** (1.0 / 3.0)))
    while grid**3 < spec.atoms:
        grid += 1
    lattice = np.stack(
        np.meshgrid(*([np.arange(grid)] * 3), indexing="ij"), axis=-1
    ).reshape(-1, 3) * (box / grid)
    psi = _displacement_field(grid, box, rng, spectral_index=-1.0)
    take = rng.permutation(grid**3)[: spec.atoms]
    q = lattice[take]
    disp = psi[take]
    # Growth factor: slightly super-linear growth over the saved window,
    # starting from already-formed structure (late-universe snapshots).
    d0, d1 = 6.0, 9.0
    growth = d0 + (d1 - d0) * np.linspace(0.0, 1.0, spec.snapshots) ** 1.1
    # Incoherent (virialized) small-scale velocity dispersion on top of
    # the coherent Zel'dovich flow: a per-particle random walk.  This is
    # what defeats velocity-extrapolating compressors (ASN) on real
    # cosmology snapshots while time-based prediction stays cheap.
    jitter = 0.06 * box / grid
    frames = (
        q[None, :, :]
        + growth[:, None, None] * disp[None, :, :]
        + jitter
        * np.cumsum(
            rng.standard_normal((spec.snapshots, spec.atoms, 3)), axis=0
        )
        / np.sqrt(np.arange(1, spec.snapshots + 1))[:, None, None]
    )
    return frames.astype(np.float32), np.full(3, box)
