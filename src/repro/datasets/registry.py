"""Dataset registry: deterministic generation with on-disk caching.

``load_dataset("copper-b")`` returns a :class:`Dataset` whose positions are
generated once (deterministically from the spec seed) and cached as ``.npz``
under the repository's ``.data_cache`` directory (override with the
``REPRO_DATA_CACHE`` environment variable).  The real-MD datasets (LJ) take
tens of seconds to integrate; everything else is near-instant.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .generators import GENERATORS
from .hacc import generate_hacc
from .spec import DATASET_SPECS, DatasetSpec

#: Bump to invalidate caches when a generator changes.
_CACHE_VERSION = 8


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_DATA_CACHE")
    if env:
        path = Path(env)
    else:
        path = Path(__file__).resolve().parents[3] / ".data_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


@dataclass(frozen=True)
class Dataset:
    """A generated dataset: positions, periodic box, and its spec."""

    spec: DatasetSpec
    positions: np.ndarray  # (T, N, 3) float32
    box: np.ndarray  # (3,)

    @property
    def name(self) -> str:
        """Registry name."""
        return self.spec.name

    @property
    def snapshots(self) -> int:
        """Number of snapshots actually generated."""
        return int(self.positions.shape[0])

    @property
    def atoms(self) -> int:
        """Atoms per snapshot."""
        return int(self.positions.shape[1])

    def axis(self, axis: int | str) -> np.ndarray:
        """One coordinate-axis stream as a float32 (T, N) array."""
        index = {"x": 0, "y": 1, "z": 2}.get(axis, axis)
        return self.positions[:, :, int(index)]

    def value_range(self, axis: int | str) -> float:
        """Max minus min over one axis stream."""
        stream = self.axis(axis)
        return float(stream.max() - stream.min())


def dataset_names(include_hacc: bool = True) -> list[str]:
    """Registry keys, in Table I order."""
    names = [n for n in DATASET_SPECS if not n.startswith("hacc")]
    if include_hacc:
        names += [n for n in DATASET_SPECS if n.startswith("hacc")]
    return names


def load_dataset(name: str, snapshots: int | None = None) -> Dataset:
    """Load (generating and caching if needed) one dataset.

    Parameters
    ----------
    name:
        A key from :func:`dataset_names`.
    snapshots:
        Optional truncation — benchmarks that only need a prefix of the
        stream can avoid regeneration (never exceeds the spec size).
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; known: {dataset_names()}"
        ) from None
    cache_file = _cache_dir() / f"{name}-v{_CACHE_VERSION}.npz"
    if cache_file.exists():
        with np.load(cache_file) as payload:
            positions = payload["positions"]
            box = payload["box"]
    else:
        rng = np.random.default_rng(spec.seed)
        generator = GENERATORS.get(name, generate_hacc)
        positions, box = generator(spec, rng)
        positions = np.ascontiguousarray(positions, dtype=np.float32)
        np.savez_compressed(cache_file, positions=positions, box=box)
    if snapshots is not None:
        positions = positions[:snapshots]
    return Dataset(spec=spec, positions=positions, box=np.asarray(box))


def clear_cache() -> int:
    """Delete all cached datasets; returns the number of files removed."""
    removed = 0
    for path in _cache_dir().glob("*.npz"):
        path.unlink()
        removed += 1
    return removed
