"""Synthetic analogs of the paper's evaluation datasets (Table I + HACC).

Each dataset reproduces the statistical features the paper characterizes in
Section V — spatial level structure, histogram shape, temporal smoothness —
at laptop scale.  The paper-scale metadata (original atom/snapshot counts)
is retained so baseline capability checks (TNG/HRTC limits) behave exactly
as in Section VII-A5.

Use :func:`load_dataset` (cached, deterministic) or :func:`dataset_names`.
"""

from .registry import Dataset, dataset_names, load_dataset, clear_cache
from .spec import DATASET_SPECS, DatasetSpec

__all__ = [
    "DATASET_SPECS",
    "Dataset",
    "DatasetSpec",
    "clear_cache",
    "dataset_names",
    "load_dataset",
]
