"""VQT: vector-quantization-time-based compression (Section VI-A).

The first snapshot of each buffer is coded with the VQ predictor; every
remaining snapshot is predicted point-wise from the reconstruction of its
predecessor (classic time-based prediction).  This wins on datasets that
combine a strong multi-peak spatial distribution with a smooth time
dimension (Figure 5 (c)(d)) — the spatial structure pays for the buffer
head, the temporal smoothness for everything else.
"""

from __future__ import annotations

import numpy as np

from ..serde import BlobReader, BlobWriter
from ..sz.pipeline import decode_int_stream, encode_int_stream
from ..sz.predictors import timewise_codes, timewise_reconstruct
from .methods import MDZMethod, MethodState
from .vq import vq_decode_array, vq_encode_array


class VQTMethod(MDZMethod):
    """VQ head + time-based tail within each buffer."""

    name = "vqt"

    def encode(self, batch, state: MethodState):
        fit = state.levels.fit_for(batch[0])
        head_blob, head_recon = vq_encode_array(batch[:1], fit, state)
        writer = BlobWriter()
        writer.write_json({"shape": list(batch.shape)})
        writer.write_bytes(head_blob)
        recon = np.empty_like(batch, dtype=np.float64)
        recon[0] = head_recon[0]
        if batch.shape[0] > 1:
            block = timewise_codes(batch[1:], state.quantizer, recon[0])
            writer.write_bytes(
                encode_int_stream(
                    block,
                    state.layout,
                    alphabet_hint=state.quantizer.scale + 1,
                    streams=state.entropy_streams,
                )
            )
            recon[1:] = timewise_reconstruct(block, state.quantizer, recon[0])
        return writer.getvalue(), recon

    def decode(self, blob, state: MethodState):
        reader = BlobReader(blob)
        meta = reader.read_json()
        shape = tuple(int(x) for x in meta["shape"])
        head = vq_decode_array(reader.read_bytes(), state)
        out = np.empty(shape, dtype=np.float64)
        out[0] = head[0]
        if shape[0] > 1:
            block = decode_int_stream(reader.read_bytes())
            out[1:] = timewise_reconstruct(block, state.quantizer, out[0])
        return out
