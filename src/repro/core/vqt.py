"""VQT: vector-quantization-time-based compression (Section VI-A).

The first snapshot of each buffer is coded with the VQ predictor; every
remaining snapshot is predicted point-wise from the reconstruction of its
predecessor (classic time-based prediction).  This wins on datasets that
combine a strong multi-peak spatial distribution with a smooth time
dimension (Figure 5 (c)(d)) — the spatial structure pays for the buffer
head, the temporal smoothness for everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..serde import BlobReader, BlobWriter
from ..sz.pipeline import (
    decode_int_stream,
    encode_int_stream,
    estimate_int_stream_bytes,
)
from ..sz.predictors import timewise_encode, timewise_reconstruct
from ..sz.quantizer import QuantizedBlock
from ..telemetry import get_recorder
from .methods import MDZMethod, MethodState
from .registry import register_method
from .vq import (
    VQPrepared,
    vq_estimate_bytes,
    vq_decode_array,
    vq_head_slice,
    vq_prepare,
    vq_serialize,
)


@dataclass
class VQTPrepared:
    """Intermediates of one VQT pass: VQ head + time-wise tail."""

    shape: tuple[int, ...]
    head: VQPrepared
    tail: QuantizedBlock | None
    recon: np.ndarray


class VQTMethod(MDZMethod):
    """VQ head + time-based tail within each buffer."""

    name = "vqt"

    def prepare(self, batch, state: MethodState, shared=None):
        if shared is not None and "vq_full" in shared:
            # An ADP trial already ran VQ over the whole batch; the VQ
            # head over batch[:1] is a row slice of that pass.
            head = vq_head_slice(shared["vq_full"], 1)
            recorder = get_recorder()
            if recorder.enabled:
                recorder.count("adp.trial.reused_intermediates")
        else:
            fit = state.levels.fit_for(batch[0])
            head = vq_prepare(batch[:1], fit, state)
        recon = np.empty_like(batch, dtype=np.float64)
        recon[0] = head.recon[0]
        tail = None
        if batch.shape[0] > 1:
            tail, tail_recon = timewise_encode(
                batch[1:], state.quantizer, recon[0]
            )
            recon[1:] = tail_recon
        return VQTPrepared(
            shape=tuple(batch.shape), head=head, tail=tail, recon=recon
        )

    def serialize(self, prepared: VQTPrepared, state: MethodState):
        writer = BlobWriter()
        writer.write_json({"shape": list(prepared.shape)})
        writer.write_bytes(vq_serialize(prepared.head, state))
        if prepared.tail is not None:
            writer.write_bytes(
                encode_int_stream(
                    prepared.tail,
                    state.layout,
                    alphabet_hint=state.quantizer.scale + 1,
                    streams=state.entropy_streams,
                )
            )
        return writer.getvalue()

    def estimate(self, prepared: VQTPrepared, state: MethodState):
        total = 32 + vq_estimate_bytes(prepared.head, state)
        if prepared.tail is not None:
            total += estimate_int_stream_bytes(
                prepared.tail,
                state.layout,
                alphabet_hint=state.quantizer.scale + 1,
                streams=state.entropy_streams,
            )
        return total

    def reconstruction(self, prepared: VQTPrepared):
        return prepared.recon

    def decode(self, blob, state: MethodState):
        reader = BlobReader(blob)
        meta = reader.read_json()
        shape = tuple(int(x) for x in meta["shape"])
        head = vq_decode_array(reader.read_bytes(), state)
        out = np.empty(shape, dtype=np.float64)
        out[0] = head[0]
        if shape[0] > 1:
            block = decode_int_stream(reader.read_bytes())
            out[1:] = timewise_reconstruct(block, state.quantizer, out[0])
        return out
register_method(
    "vqt",
    VQTMethod,
    predictors=("level", "timewise"),
    encoder="huffman-int-stream",
    description=(
        "VQ head + time-based tail: spatial levels pay for the buffer "
        "head, temporal smoothness for the rest (Section VI-A)"
    ),
)
