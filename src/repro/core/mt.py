"""MT: multi-level time-based compression (Section VI-B).

The first snapshot of each buffer is predicted point-wise from the
reconstruction of the *initial snapshot of the whole session* ("snapshot
0") — the initial-time-based prediction marked (T) in Figure 6 — and the
remaining snapshots use ordinary time-based prediction.  Figure 8 motivates
the design: for solids like Copper-A and Pt, every snapshot stays extremely
similar to snapshot 0, so the reference prediction beats any spatial
(Lorenzo) predictor by orders of magnitude (Table II).

The very first snapshot of a session has no reference yet; it is
bootstrapped with intra-snapshot Lorenzo prediction, and its reconstruction
becomes the session reference (maintained by the session object, not here).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DecompressionError
from ..serde import BlobReader, BlobWriter
from ..sz.pipeline import decode_int_stream, encode_int_stream
from ..sz.predictors import (
    lorenzo_1d_codes,
    lorenzo_1d_reconstruct,
    reference_codes,
    reference_reconstruct,
    timewise_codes,
    timewise_reconstruct,
)
from .methods import MDZMethod, MethodState


class MTMethod(MDZMethod):
    """Initial-snapshot head + time-based tail within each buffer."""

    name = "mt"

    def encode(self, batch, state: MethodState):
        writer = BlobWriter()
        bootstrap = state.reference is None
        writer.write_json(
            {"shape": list(batch.shape), "bootstrap": bootstrap}
        )
        recon = np.empty_like(batch, dtype=np.float64)
        if bootstrap:
            anchor = float(batch[0, 0])
            block = lorenzo_1d_codes(batch[0], state.quantizer, anchor)
            writer.write_json({"anchor": anchor})
            writer.write_bytes(
                encode_int_stream(
                    block,
                    "C",
                    alphabet_hint=state.quantizer.scale + 1,
                    streams=state.entropy_streams,
                )
            )
            recon[0] = lorenzo_1d_reconstruct(block, state.quantizer, anchor)
        else:
            block = reference_codes(batch[0], state.quantizer, state.reference)
            writer.write_bytes(
                encode_int_stream(
                    block,
                    "C",
                    alphabet_hint=state.quantizer.scale + 1,
                    streams=state.entropy_streams,
                )
            )
            recon[0] = reference_reconstruct(
                block, state.quantizer, state.reference
            )
        if batch.shape[0] > 1:
            tail = timewise_codes(batch[1:], state.quantizer, recon[0])
            writer.write_bytes(
                encode_int_stream(
                    tail,
                    state.layout,
                    alphabet_hint=state.quantizer.scale + 1,
                    streams=state.entropy_streams,
                )
            )
            recon[1:] = timewise_reconstruct(tail, state.quantizer, recon[0])
        return writer.getvalue(), recon

    def decode(self, blob, state: MethodState):
        reader = BlobReader(blob)
        meta = reader.read_json()
        shape = tuple(int(x) for x in meta["shape"])
        out = np.empty(shape, dtype=np.float64)
        if bool(meta["bootstrap"]):
            anchor = float(reader.read_json()["anchor"])
            block = decode_int_stream(reader.read_bytes())
            out[0] = lorenzo_1d_reconstruct(block, state.quantizer, anchor)
        else:
            if state.reference is None:
                raise DecompressionError(
                    "MT buffer requires the session reference snapshot; "
                    "decode buffers in order"
                )
            block = decode_int_stream(reader.read_bytes())
            out[0] = reference_reconstruct(
                block, state.quantizer, state.reference
            )
        if shape[0] > 1:
            tail = decode_int_stream(reader.read_bytes())
            out[1:] = timewise_reconstruct(tail, state.quantizer, out[0])
        return out
