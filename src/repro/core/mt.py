"""MT: multi-level time-based compression (Section VI-B).

The first snapshot of each buffer is predicted point-wise from the
reconstruction of the *initial snapshot of the whole session* ("snapshot
0") — the initial-time-based prediction marked (T) in Figure 6 — and the
remaining snapshots use ordinary time-based prediction.  Figure 8 motivates
the design: for solids like Copper-A and Pt, every snapshot stays extremely
similar to snapshot 0, so the reference prediction beats any spatial
(Lorenzo) predictor by orders of magnitude (Table II).

The very first snapshot of a session has no reference yet; it is
bootstrapped with intra-snapshot Lorenzo prediction, and its reconstruction
becomes the session reference (maintained by the session object, not here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DecompressionError
from ..serde import BlobReader, BlobWriter
from ..sz.predictors import (
    lorenzo_1d_encode,
    lorenzo_1d_reconstruct,
    reference_encode,
    reference_reconstruct,
    timewise_encode,
    timewise_reconstruct,
)
from ..sz.quantizer import QuantizedBlock
from .methods import MDZMethod, MethodState
from .registry import register_method


@dataclass
class MTPrepared:
    """Intermediates of one MT pass: head block + time-wise tail."""

    shape: tuple[int, ...]
    bootstrap: bool
    anchor: float | None
    head: QuantizedBlock
    tail: QuantizedBlock | None
    recon: np.ndarray


class MTMethod(MDZMethod):
    """Initial-snapshot head + time-based tail within each buffer.

    The entropy backend is resolved by name from the encoder-stage
    registry, so a subclass swaps its whole serialization by overriding
    :attr:`encoder_name` (see :class:`repro.core.bitadaptive`).  The
    default resolves to the exact :mod:`repro.sz.pipeline` functions the
    pre-registry code called, so MT archives are byte-identical.
    """

    name = "mt"
    #: Encoder-stage registry key (``repro.core.registry.ENCODERS``).
    encoder_name = "huffman-int-stream"

    def _encoder(self):
        from .registry import ENCODERS, ensure_members

        ensure_members()
        return ENCODERS.create(self.encoder_name)

    def prepare(self, batch, state: MethodState, shared=None):
        bootstrap = state.reference is None
        recon = np.empty_like(batch, dtype=np.float64)
        anchor = None
        if bootstrap:
            anchor = float(batch[0, 0])
            head, head_recon = lorenzo_1d_encode(
                batch[0], state.quantizer, anchor
            )
        else:
            head, head_recon = reference_encode(
                batch[0], state.quantizer, state.reference
            )
        recon[0] = head_recon
        tail = None
        if batch.shape[0] > 1:
            tail, tail_recon = timewise_encode(
                batch[1:], state.quantizer, recon[0]
            )
            recon[1:] = tail_recon
        return MTPrepared(
            shape=tuple(batch.shape),
            bootstrap=bootstrap,
            anchor=anchor,
            head=head,
            tail=tail,
            recon=recon,
        )

    def serialize(self, prepared: MTPrepared, state: MethodState):
        encoder = self._encoder()
        writer = BlobWriter()
        writer.write_json(
            {"shape": list(prepared.shape), "bootstrap": prepared.bootstrap}
        )
        if prepared.bootstrap:
            writer.write_json({"anchor": prepared.anchor})
        writer.write_bytes(
            encoder.encode(
                prepared.head,
                "C",
                alphabet_hint=state.quantizer.scale + 1,
                streams=state.entropy_streams,
            )
        )
        if prepared.tail is not None:
            writer.write_bytes(
                encoder.encode(
                    prepared.tail,
                    state.layout,
                    alphabet_hint=state.quantizer.scale + 1,
                    streams=state.entropy_streams,
                )
            )
        return writer.getvalue()

    def estimate(self, prepared: MTPrepared, state: MethodState):
        encoder = self._encoder()
        total = 48 + encoder.estimate(
            prepared.head,
            "C",
            alphabet_hint=state.quantizer.scale + 1,
            streams=state.entropy_streams,
        )
        if prepared.tail is not None:
            total += encoder.estimate(
                prepared.tail,
                state.layout,
                alphabet_hint=state.quantizer.scale + 1,
                streams=state.entropy_streams,
            )
        return total

    def reconstruction(self, prepared: MTPrepared):
        return prepared.recon

    def decode(self, blob, state: MethodState):
        encoder = self._encoder()
        reader = BlobReader(blob)
        meta = reader.read_json()
        shape = tuple(int(x) for x in meta["shape"])
        out = np.empty(shape, dtype=np.float64)
        if bool(meta["bootstrap"]):
            anchor = float(reader.read_json()["anchor"])
            block = encoder.decode(reader.read_bytes())
            out[0] = lorenzo_1d_reconstruct(block, state.quantizer, anchor)
        else:
            if state.reference is None:
                raise DecompressionError(
                    "MT buffer requires the session reference snapshot; "
                    "decode buffers in order"
                )
            block = encoder.decode(reader.read_bytes())
            out[0] = reference_reconstruct(
                block, state.quantizer, state.reference
            )
        if shape[0] > 1:
            tail = encoder.decode(reader.read_bytes())
            out[1:] = timewise_reconstruct(tail, state.quantizer, out[0])
        return out


register_method(
    "mt",
    MTMethod,
    needs_reference=True,
    predictors=("reference", "lorenzo1d", "timewise"),
    encoder="huffman-int-stream",
    description=(
        "Multi-level time-based: buffer head predicted from the session "
        "reference snapshot (Lorenzo bootstrap for the first buffer), "
        "tail chained time-wise (Section VI-B)"
    ),
)
