"""MDZ — the paper's contribution: an adaptive error-bounded MD compressor.

MDZ (Section VI) selects among three prediction strategies tuned to the
spatial/temporal structure of MD data:

* :class:`~repro.core.vq.VQMethod` — vector-quantization prediction from
  the clustered crystal levels, snapshot-independent;
* :class:`~repro.core.vqt.VQTMethod` — VQ on the first snapshot of each
  buffer, time-based prediction for the rest;
* :class:`~repro.core.mt.MTMethod` — initial-snapshot (snapshot-0)
  prediction for the first snapshot of each buffer, time-based for the
  rest;

plus the adaptive selector :class:`~repro.core.adaptive.ADPSelector` that
re-evaluates all three every 50 buffers and keeps the winner (per axis).

The user-facing entry points are :class:`~repro.core.mdz.MDZ` (whole
(snapshots, atoms, 3) trajectories, produces ``.mdz`` containers) and
:class:`~repro.core.mdz.MDZAxisCompressor` (the per-axis session used by
the benchmark harness).
"""

from .config import MDZConfig
from .levels import SessionLevelModel
from .mdz import MDZ, MDZAxisCompressor
from .methods import MDZMethod, MethodState
from .vq import VQMethod
from .vqt import VQTMethod
from .mt import MTMethod
from .adaptive import ADPSelector

__all__ = [
    "ADPSelector",
    "MDZ",
    "MDZAxisCompressor",
    "MDZConfig",
    "MDZMethod",
    "MethodState",
    "MTMethod",
    "SessionLevelModel",
    "VQMethod",
    "VQTMethod",
]
