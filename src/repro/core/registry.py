"""Composable stage and method registries.

MDZ's multi-algorithm ADP selector wins because it can pick the best
member per buffer — which is only as valuable as the pool of members it
can pick from.  This module makes that pool open: compression *methods*
(the ADP-selectable members) and the *stages* they compose — predictors,
quantizers, and encoders — are looked up by name in registries instead of
being hard-wired into ``core/mdz.py`` and ``core/adaptive.py``.

The shape is the classic name -> factory lookup dict (SZ3 recasts SZ the
same way: a compressor is a composition of interchangeable predictor /
quantizer / encoder stages).  Adding a member is:

1. implement the :class:`~repro.core.methods.MDZMethod` contract
   (``prepare`` / ``serialize`` / ``estimate`` / ``reconstruction`` /
   ``decode`` — see ``docs/stages.md`` for the worked tutorial);
2. reserve a wire id in :data:`~repro.core.methods.METHOD_IDS`;
3. call :func:`register_method` at module import and list the module in
   :func:`ensure_members`.

Everything else — ADP trials, the streaming executor's out-of-session
dispatch, container method tags, ``mdz info`` summaries, the CLI
``--methods`` flag, and the generated ``docs/stages.md`` tables — picks
the new member up from the registry.

Stage registries (:data:`PREDICTORS`, :data:`QUANTIZERS`,
:data:`ENCODERS`) serve two roles: new members build themselves from
stage lookups instead of private imports, and the docs generator
(``tools/list_stages.py``) renders the authoritative composition tables
from the same entries the code resolves at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..exceptions import ConfigurationError
from .methods import METHOD_IDS, MDZMethod

#: The ADP candidate pool used when none is configured.  This is the
#: paper's original three-way trial; archives produced with it are pinned
#: byte-identical to the pre-registry seed (tools/legacy_digests.py).
DEFAULT_MEMBERS = ("vq", "vqt", "mt")


@dataclass(frozen=True)
class StageEntry:
    """One registered stage: a named, documented factory."""

    name: str
    kind: str  # "predictor" | "quantizer" | "encoder"
    factory: Callable
    description: str
    ref: str  # code pointer, e.g. "sz/predictors.py"


class StageRegistry:
    """Name -> :class:`StageEntry` lookup for one stage kind.

    A thin ordered dict wrapper; iteration order is registration order,
    which is also the order the documentation tables render in.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, StageEntry] = {}

    def register(
        self, name: str, factory: Callable, *, description: str, ref: str
    ) -> Callable:
        if name in self._entries:
            raise ConfigurationError(
                f"duplicate {self.kind} stage {name!r}"
            )
        self._entries[name] = StageEntry(
            name=name,
            kind=self.kind,
            factory=factory,
            description=description,
            ref=ref,
        )
        return factory

    def get(self, name: str) -> StageEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} stage {name!r}; "
                f"registered: {', '.join(self._entries) or '(none)'}"
            ) from None

    def create(self, name: str, *args, **kwargs):
        """Instantiate the named stage via its factory."""
        return self.get(name).factory(*args, **kwargs)

    def names(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def entries(self) -> tuple[StageEntry, ...]:
        return tuple(self._entries.values())


PREDICTORS = StageRegistry("predictor")
QUANTIZERS = StageRegistry("quantizer")
ENCODERS = StageRegistry("encoder")


@dataclass(frozen=True)
class MethodEntry:
    """One registered compression member.

    ``needs_reference`` marks members whose encode reads the session
    reference snapshot: the streaming writer ships the reference to
    worker processes only for these
    (:meth:`~repro.core.mdz.MDZAxisCompressor.export_session_state`).
    ``stages`` names the member's composition for documentation and
    introspection; every listed name resolves in the matching stage
    registry (pinned by ``tests/test_registry.py``).
    """

    name: str
    method_id: int
    factory: Callable[[], MDZMethod]
    needs_reference: bool
    predictors: tuple[str, ...]
    quantizer: str
    encoder: str
    description: str


_METHODS: dict[str, MethodEntry] = {}
_INSTANCES: dict[str, MDZMethod] = {}


def register_method(
    name: str,
    factory: Callable[[], MDZMethod],
    *,
    needs_reference: bool = False,
    predictors: tuple[str, ...],
    quantizer: str = "linear",
    encoder: str = "huffman-int-stream",
    description: str,
) -> Callable[[], MDZMethod]:
    """Register an ADP-selectable member under its wire id.

    The wire id comes from :data:`~repro.core.methods.METHOD_IDS` — the
    single source of truth for the container format — so a member cannot
    be registered without a reserved id, and two members cannot collide.
    """
    if name not in METHOD_IDS:
        raise ConfigurationError(
            f"method {name!r} has no wire id; reserve one in "
            "repro.core.methods.METHOD_IDS first"
        )
    if name in _METHODS:
        raise ConfigurationError(f"duplicate method registration {name!r}")
    _METHODS[name] = MethodEntry(
        name=name,
        method_id=METHOD_IDS[name],
        factory=factory,
        needs_reference=needs_reference,
        predictors=tuple(predictors),
        quantizer=quantizer,
        encoder=encoder,
        description=description,
    )
    return factory


def ensure_members() -> None:
    """Import every built-in member and stage module (idempotent).

    Registration happens at module import; this gives every consumer a
    one-call way to guarantee the registries are fully populated without
    eagerly importing the whole package at ``import repro``.
    """
    from ..sz import stages  # noqa: F401  (registers the stage entries)
    from . import bitadaptive, interp, mt, vq, vqt  # noqa: F401


def method_entry(name: str) -> MethodEntry:
    """The registry entry for ``name``; raises ``ConfigurationError``."""
    ensure_members()
    try:
        return _METHODS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown method {name!r}; registered: "
            f"{', '.join(sorted(_METHODS))}"
        ) from None


def get_method(name: str) -> MDZMethod:
    """The shared stateless instance of the named member.

    Methods carry no per-session state (that lives in
    :class:`~repro.core.methods.MethodState`), so one instance serves
    every session and trial.
    """
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = method_entry(name).factory()
        _INSTANCES[name] = instance
    return instance


def create_method(name: str) -> MDZMethod:
    """A fresh instance of the named member (rarely needed; see
    :func:`get_method`)."""
    return method_entry(name).factory()


def method_names() -> tuple[str, ...]:
    """Every registered member, in wire-id order."""
    ensure_members()
    return tuple(sorted(_METHODS, key=lambda n: _METHODS[n].method_id))


def method_entries() -> tuple[MethodEntry, ...]:
    ensure_members()
    return tuple(
        _METHODS[name] for name in method_names()
    )


def validate_members(members: tuple[str, ...]) -> tuple[str, ...]:
    """Normalize + validate an ADP candidate pool; returns a tuple.

    Raises :class:`ConfigurationError` for an empty pool, duplicates, or
    an unregistered name.
    """
    members = tuple(members)
    if not members:
        raise ConfigurationError(
            "the ADP member pool must name at least one method"
        )
    if len(set(members)) != len(members):
        raise ConfigurationError(
            f"duplicate entries in ADP member pool {members}"
        )
    for name in members:
        method_entry(name)  # raises with the registered-names list
    return members
