"""Session-level caching of the VQ level model (lambda, mu).

The paper computes the k-means DP *once per simulation*, on a 10 % sample of
the first snapshot, and reuses the fitted level model for every subsequent
snapshot (Section VI-A: "we observe the snapshots have unchanged level
patterns during the simulation").  :class:`SessionLevelModel` implements
that caching and the lazy computation — the fit is only run when a VQ-family
method actually needs it.
"""

from __future__ import annotations

import numpy as np

from ..cluster.level_detect import LevelFit, detect_levels


class SessionLevelModel:
    """Lazily-computed, session-cached level model for one axis stream."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._fit: LevelFit | None = None

    @property
    def is_fitted(self) -> bool:
        """True once the k-means fit has run."""
        return self._fit is not None

    @property
    def fit(self) -> LevelFit | None:
        """The cached fit, or ``None`` before any VQ-family encode."""
        return self._fit

    def seed(self, fit: LevelFit) -> None:
        """Adopt a fit computed elsewhere.

        The streaming executor uses this to hand a worker session the level
        model the parent session fitted on the first buffer, so out-of-order
        workers produce byte-identical VQ/VQT payloads.
        """
        self._fit = fit

    def fit_for(self, snapshot: np.ndarray) -> LevelFit:
        """Return the cached fit, computing it from ``snapshot`` if needed.

        Only the *first* snapshot handed to this method is ever used — the
        level pattern is treated as stable for the whole session, exactly
        as the paper does.
        """
        if self._fit is None:
            self._fit = detect_levels(snapshot, seed=self._seed)
        return self._fit

    def reset(self) -> None:
        """Forget the fit (used when a session is reused across datasets)."""
        self._fit = None
