"""Interp: SZ3-style spline-interpolation member (registry id 4).

The first genuinely new member added through the stage registry
(:mod:`repro.core.registry`): a temporal binary interpolation cascade,
the same design SZ3 (arXiv 2111.02925) uses along mesh dimensions,
applied along each buffer's time axis.  The buffer root is coded with
1-D Lorenzo prediction; every other snapshot is a cascade midpoint
predicted from *reconstructed* neighbours with either linear or cubic
(4-point Catmull-Rom-like) interpolation — the better order is chosen
per buffer from the estimate stage, which is the "dynamic" part of
SZ-Interp.

Where it wins: smoothly curving trajectories (oscillation, inertial
drift).  Time-wise chain prediction (VQT/MT tails) pays for the full
first difference of every snapshot; a midpoint interpolation cancels the
linear component, leaving residuals proportional to the *second*
difference.  The ADP selector picks this member per buffer whenever that
trade is favourable (``--methods adp --adp-members ...interp``).

Buffers are self-contained (no session reference, like VQ), so interp
buffers decode in isolation and mix freely with any other member under
ADP.  All cascade kernels are shared with the SZ-Interp baseline
(:mod:`repro.sz.interp`) and resolved through the predictor-stage
registry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..serde import BlobReader, BlobWriter
from ..sz.interp import level_plan, reconstruct_level
from ..sz.predictors import lorenzo_1d_encode, lorenzo_1d_reconstruct
from ..sz.quantizer import QuantizedBlock
from .methods import MDZMethod, MethodState
from .registry import register_method

#: Interpolation orders, in trial order (ties go to the earlier entry).
ORDERS = ("linear", "cubic")


@dataclass
class InterpPrepared:
    """Intermediates of one interp pass: root + per-level blocks."""

    shape: tuple[int, ...]
    anchor: float
    order: str
    root: QuantizedBlock
    blocks: tuple[QuantizedBlock, ...]
    recon: np.ndarray


class InterpMethod(MDZMethod):
    """Temporal interpolation cascade with per-buffer order selection."""

    name = "interp"
    #: Encoder-stage registry key (``repro.core.registry.ENCODERS``).
    encoder_name = "huffman-int-stream"

    def _encoder(self):
        from .registry import ENCODERS, ensure_members

        ensure_members()
        return ENCODERS.create(self.encoder_name)

    def _predictor(self, order: str):
        from .registry import PREDICTORS, ensure_members

        ensure_members()
        return PREDICTORS.get(f"interp-{order}").factory

    def _cascade(self, batch, state: MethodState, order: str):
        """Encode one buffer at the given order; returns an
        :class:`InterpPrepared` (prediction always reads the running
        reconstruction, so the result is exactly error-bounded)."""
        quantizer = state.quantizer
        predict = self._predictor(order)
        anchor = float(batch[0, 0])
        root, root_recon = lorenzo_1d_encode(batch[0], quantizer, anchor)
        recon = np.empty_like(batch, dtype=np.float64)
        recon[0] = root_recon
        blocks: list[QuantizedBlock] = []
        for stride, idx, is_anchor in level_plan(batch.shape[0]):
            pred = predict(recon, idx, stride, is_anchor)
            codes = np.rint(
                (batch[idx] - pred) / quantizer.bin_width
            ).astype(np.int64)
            absolute = quantizer.grid_levels(batch[idx], 0.0)
            block = quantizer.split(codes, absolute, order="F")
            blocks.append(block)
            recon[idx] = reconstruct_level(block, pred, quantizer)
        return InterpPrepared(
            shape=tuple(batch.shape),
            anchor=anchor,
            order=order,
            root=root,
            blocks=tuple(blocks),
            recon=recon,
        )

    def prepare(self, batch, state: MethodState, shared=None):
        encoder = self._encoder()
        best = None
        best_cost = None
        for order in ORDERS:
            candidate = self._cascade(batch, state, order)
            # The root is order-independent; compare level payloads only.
            cost = sum(
                encoder.estimate(
                    block,
                    state.layout,
                    alphabet_hint=state.quantizer.scale + 1,
                    streams=state.entropy_streams,
                )
                for block in candidate.blocks
            )
            if best_cost is None or cost < best_cost:
                best, best_cost = candidate, cost
        return best

    def serialize(self, prepared: InterpPrepared, state: MethodState):
        encoder = self._encoder()
        writer = BlobWriter()
        writer.write_json(
            {
                "shape": list(prepared.shape),
                "order": prepared.order,
                "anchor": prepared.anchor,
            }
        )
        writer.write_bytes(
            encoder.encode(
                prepared.root,
                "C",
                alphabet_hint=state.quantizer.scale + 1,
                streams=state.entropy_streams,
            )
        )
        for block in prepared.blocks:
            writer.write_bytes(
                encoder.encode(
                    block,
                    state.layout,
                    alphabet_hint=state.quantizer.scale + 1,
                    streams=state.entropy_streams,
                )
            )
        return writer.getvalue()

    def estimate(self, prepared: InterpPrepared, state: MethodState):
        encoder = self._encoder()
        total = 64 + encoder.estimate(
            prepared.root,
            "C",
            alphabet_hint=state.quantizer.scale + 1,
            streams=state.entropy_streams,
        )
        for block in prepared.blocks:
            total += encoder.estimate(
                block,
                state.layout,
                alphabet_hint=state.quantizer.scale + 1,
                streams=state.entropy_streams,
            )
        return total

    def reconstruction(self, prepared: InterpPrepared):
        return prepared.recon

    def decode(self, blob, state: MethodState):
        encoder = self._encoder()
        reader = BlobReader(blob)
        meta = reader.read_json()
        shape = tuple(int(x) for x in meta["shape"])
        order = str(meta["order"])
        predict = self._predictor(order)
        anchor = float(meta["anchor"])
        quantizer = state.quantizer
        root = encoder.decode(reader.read_bytes())
        out = np.empty(shape, dtype=np.float64)
        out[0] = lorenzo_1d_reconstruct(root, quantizer, anchor)
        for stride, idx, is_anchor in level_plan(shape[0]):
            block = encoder.decode(reader.read_bytes())
            pred = predict(out, idx, stride, is_anchor)
            out[idx] = reconstruct_level(block, pred, quantizer)
        return out


register_method(
    "interp",
    InterpMethod,
    predictors=("lorenzo1d", "interp-linear", "interp-cubic"),
    encoder="huffman-int-stream",
    description=(
        "SZ3-style temporal interpolation cascade (linear/cubic chosen "
        "per buffer); residuals track second differences, so it wins on "
        "smoothly curving trajectories"
    ),
)
