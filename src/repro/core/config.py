"""Configuration for the MDZ compressor.

Defaults follow the paper: value-range-relative error bound, buffer size 10,
quantization scale 1024 (the Figure 9 sweet spot), Seq-2 code ordering
(Table III), adaptive method selection re-evaluated every 50 buffers
(Section VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ConfigurationError

#: Method names accepted by :attr:`MDZConfig.method`: ``"adp"`` plus
#: every registered member (wire-id order; see
#: :func:`repro.core.registry.method_names`).
METHODS = ("adp", "vq", "vqt", "mt", "interp", "bitadaptive")

#: Default ADP candidate pool (the paper's three-way trial).  Mirrors
#: :data:`repro.core.registry.DEFAULT_MEMBERS`; kept literal here so
#: importing the config module stays dependency-light.
DEFAULT_ADP_MEMBERS = ("vq", "vqt", "mt")

#: Error-bound interpretation modes.
ERROR_BOUND_MODES = ("value_range", "absolute")

#: Sequence (quantization-code ordering) modes; Seq-2 is particle-major.
SEQUENCE_MODES = ("seq1", "seq2")


@dataclass
class MDZConfig:
    """All tunables of the MDZ compressor.

    Attributes
    ----------
    error_bound:
        The bound value; interpreted according to ``error_bound_mode``.
        Default 1e-3 (the paper's headline setting).
    error_bound_mode:
        ``"value_range"`` — absolute bound is ``error_bound * (max - min)``
        of the first buffer of each axis (the paper's epsilon); or
        ``"absolute"`` — used verbatim.
    buffer_size:
        Snapshots per buffer (BS); the paper sweeps 10/50/100.
    quantization_scale:
        Number of representable quantization integers (Section VI-C1).
    sequence_mode:
        ``"seq2"`` (particle-major, default) or ``"seq1"`` (Table III).
    method:
        ``"adp"`` (default) or a fixed registered member — ``"vq"``,
        ``"vqt"``, ``"mt"``, ``"interp"``, or ``"bitadaptive"``.
    adp_members:
        The candidate pool ADP trials choose from (ignored for fixed
        methods).  Defaults to the paper's three-way VQ/VQT/MT trial;
        any registered member may be listed (``docs/stages.md``).  The
        container/stream header records a non-default pool.
    adaptation_interval:
        Buffers between ADP re-evaluations (the paper: every 50
        compression operations).
    lossless_backend:
        Trailing dictionary coder (``"zlib"``, ``"lzma"``, ``"bz2"``).
    level_seed:
        Seed for the k-means sampling in the level detector.
    entropy_streams:
        Huffman sub-stream fan-out for the entropy stage.  ``None``
        (default) lets the codec scale the count with the array size;
        ``1`` forces the legacy single-stream blob format; larger values
        force that many interleaved H2 streams — see
        :meth:`repro.sz.huffman.HuffmanCodec.encode`.
    audit_interval:
        Quality-audit sampling interval: every ``audit_interval``-th
        buffer (per axis, by global buffer index) is round-trip decoded
        and checked against the error bound
        (:class:`repro.telemetry.quality.QualityAuditor`).  ``0``
        disables auditing.  Auditing never changes the encoded bytes.
    """

    error_bound: float = 1e-3
    error_bound_mode: str = "value_range"
    buffer_size: int = 10
    quantization_scale: int = 1024
    sequence_mode: str = "seq2"
    method: str = "adp"
    adp_members: tuple = DEFAULT_ADP_MEMBERS
    adaptation_interval: int = 50
    lossless_backend: str = "zlib"
    level_seed: int = 0
    entropy_streams: int | None = None
    audit_interval: int = 32

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.error_bound_mode not in ERROR_BOUND_MODES:
            raise ConfigurationError(
                f"error_bound_mode must be one of {ERROR_BOUND_MODES}, "
                f"got {self.error_bound_mode!r}"
            )
        if not self.error_bound > 0:
            raise ConfigurationError(
                f"error_bound must be positive, got {self.error_bound}"
            )
        if self.error_bound_mode == "value_range" and self.error_bound >= 1:
            raise ConfigurationError(
                "a value-range-relative bound >= 1 would erase the data; "
                f"got {self.error_bound}"
            )
        if self.buffer_size < 1:
            raise ConfigurationError(
                f"buffer_size must be >= 1, got {self.buffer_size}"
            )
        if self.quantization_scale < 4:
            raise ConfigurationError(
                f"quantization_scale must be >= 4, got {self.quantization_scale}"
            )
        if self.sequence_mode not in SEQUENCE_MODES:
            raise ConfigurationError(
                f"sequence_mode must be one of {SEQUENCE_MODES}, "
                f"got {self.sequence_mode!r}"
            )
        if self.method not in METHODS:
            raise ConfigurationError(
                f"method must be one of {METHODS}, got {self.method!r}"
            )
        self.adp_members = tuple(self.adp_members)
        if self.method == "adp":
            from .registry import validate_members

            validate_members(self.adp_members)
        if self.adaptation_interval < 1:
            raise ConfigurationError(
                f"adaptation_interval must be >= 1, got {self.adaptation_interval}"
            )
        if self.entropy_streams is not None and self.entropy_streams < 1:
            raise ConfigurationError(
                f"entropy_streams must be >= 1 (or None for auto), "
                f"got {self.entropy_streams}"
            )
        if self.audit_interval < 0:
            raise ConfigurationError(
                f"audit_interval must be >= 0 (0 disables auditing), "
                f"got {self.audit_interval}"
            )

    @property
    def layout(self) -> str:
        """Numpy flattening order implementing the sequence mode."""
        return "F" if self.sequence_mode == "seq2" else "C"

    def absolute_bound(self, value_range: float) -> float:
        """Resolve the configured bound to an absolute bound."""
        if self.error_bound_mode == "absolute":
            return self.error_bound
        if value_range <= 0:
            # Constant data: any positive bound preserves it exactly.
            return self.error_bound
        return self.error_bound * value_range
