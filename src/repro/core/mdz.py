"""MDZ compressor front ends.

Two entry points:

* :class:`MDZAxisCompressor` — the per-axis session implementing the
  :class:`~repro.baselines.api.Compressor` interface (what the benchmark
  harness drives, one session per coordinate axis);
* :class:`MDZ` — the user-facing whole-trajectory compressor: takes a
  ``(snapshots, atoms, 3)`` array, runs one axis session per coordinate,
  and packs everything into a self-describing ``.mdz`` container
  (:mod:`repro.io.container`).
"""

from __future__ import annotations

import numpy as np

from ..baselines.api import Compressor, SessionMeta, register_compressor
from ..exceptions import CompressionError, DecompressionError
from ..serde import BlobReader, BlobWriter
from ..sz.lossless import lossless_compress, lossless_decompress
from ..sz.quantizer import LinearQuantizer
from ..telemetry import get_recorder
from .adaptive import ADPSelector
from .config import MDZConfig
from .levels import SessionLevelModel
from .methods import METHOD_IDS, METHOD_NAMES, MethodState
from .registry import get_method, method_entry


class MDZAxisCompressor(Compressor):
    """MDZ session over one coordinate-axis stream of (B, N) buffers.

    Parameters
    ----------
    config:
        Full MDZ configuration; ``config.method`` picks ADP (default) or a
        fixed method.  The harness supplies the *absolute* error bound via
        :meth:`begin`, so ``config.error_bound`` is ignored here.
    """

    is_lossless = False

    def __init__(self, config: MDZConfig | None = None) -> None:
        self.config = config if config is not None else MDZConfig()
        self.name = (
            "mdz" if self.config.method == "adp" else f"mdz-{self.config.method}"
        )
        # Buffer-isolated members decode any buffer without replaying
        # the session (VQ by design, interp because its cascade roots
        # are Lorenzo-bootstrapped per buffer).
        self.supports_random_access = self.config.method in ("vq", "interp")
        self._state: MethodState | None = None
        self._selector: ADPSelector | None = None

    def begin(self, error_bound: float | None, meta: SessionMeta) -> None:
        super().begin(error_bound, meta)
        if error_bound is not None and not np.isfinite(error_bound):
            # A NaN/Inf bound almost always means the value range it was
            # resolved from came from non-finite input data; say so instead
            # of letting the quantizer complain about its configuration.
            raise CompressionError(
                f"{self.name}: error bound is not finite ({error_bound}); "
                "this usually means the input contains non-finite values"
            )
        self._state = MethodState(
            quantizer=LinearQuantizer(
                error_bound, self.config.quantization_scale
            ),
            layout=self.config.layout,
            levels=SessionLevelModel(seed=self.config.level_seed),
            reference=None,
            lossless_backend=self.config.lossless_backend,
            entropy_streams=self.config.entropy_streams,
        )
        self._selector = ADPSelector(
            interval=self.config.adaptation_interval,
            members=self.config.adp_members,
        )

    @property
    def selection_history(self):
        """ADP selection records (empty for fixed-method sessions)."""
        return [] if self._selector is None else self._selector.history

    def compress_batch(self, batch: np.ndarray) -> bytes:
        batch = self.as_batch(batch)
        if not np.isfinite(batch).all():
            raise CompressionError("input contains non-finite values")
        state = self._require_state()
        recorder = get_recorder()
        # The provenance span: every annotation made below it — by ADP,
        # the quantizer serializer, the Huffman stage, the dictionary
        # coder — lands in this buffer's provenance record.
        with recorder.span("mdz.compress.buffer", provenance=True), \
                recorder.timer("mdz.compress_batch"):
            if self.config.method == "adp":
                name, payload, recon = self._selector.encode(batch, state)
            else:
                name = self.config.method
                payload, recon = get_method(name).encode(batch, state)
            if state.reference is None:
                state.reference = recon[0].copy()
            writer = BlobWriter()
            writer.write_json({"m": METHOD_IDS[name]})
            writer.write_bytes(payload)
            blob = lossless_compress(writer.getvalue(), state.lossless_backend)
            recorder.annotate(
                method=name,
                rows=int(batch.shape[0]),
                raw_values=int(batch.size),
                raw_bytes=int(batch.size) * 4,  # float32 storage convention
                compressed_bytes=len(blob),
                error_bound=self.error_bound,
            )
        if recorder.enabled:
            recorder.count("mdz.buffers")
            recorder.count(f"mdz.method.{name}")
            recorder.count("mdz.compressed_bytes", len(blob))
            recorder.count("mdz.raw_values", batch.size)
        return blob

    def decompress_batch(self, blob: bytes) -> np.ndarray:
        state = self._require_state()
        recorder = get_recorder()
        with recorder.span("mdz.decompress.buffer"), \
                recorder.timer("mdz.decompress_batch"):
            reader = BlobReader(lossless_decompress(blob))
            method_id = int(reader.read_json()["m"])
            try:
                name = METHOD_NAMES[method_id]
            except KeyError:
                raise DecompressionError(
                    f"unknown MDZ method id {method_id}"
                ) from None
            out = get_method(name).decode(reader.read_bytes(), state)
            if state.reference is None:
                state.reference = out[0].copy()
        return out

    def _require_state(self) -> MethodState:
        if self._state is None:
            raise CompressionError(
                "session not started: call begin(error_bound, meta) first"
            )
        return self._state

    # -- streaming/parallel support -------------------------------------
    #
    # After the first buffer an MDZ session is effectively frozen: the
    # reference snapshot and the level model are fitted once and never
    # change, and only ADP's buffer counter advances.  The streaming
    # executor exploits that: it exports the frozen state, ships it to a
    # worker process, and encodes later buffers out-of-session with
    # byte-identical results.

    def pending_method(self) -> str | None:
        """The method the next buffer will be coded with, if it can be
        encoded out-of-session; ``None`` when the buffer must run here
        (first buffer of the session, or an ADP trial buffer)."""
        state = self._require_state()
        if state.reference is None:
            return None
        if self.config.method != "adp":
            return self.config.method
        if self._selector.trial_due():
            return None
        return self._selector.current

    def export_session_seed(self):
        """The frozen cross-buffer state: ``(reference, level_fit)``."""
        state = self._require_state()
        return state.reference, state.levels.fit

    def export_session_state(self, method: str):
        """The frozen state for out-of-session encoding with ``method``,
        plus its identity digest: ``(reference, level_fit, digest)``.

        ``reference`` is included only for members whose registry entry
        sets ``needs_reference`` (MT and bitadaptive — the ones that
        read it), so VQ/VQT/interp state stays a few hundred bytes.  ``digest`` is a
        BLAKE2b hash over every input that shapes the encoded bytes: the
        method, the session configuration (bound, quantizer scale,
        sequence mode, lossless backend, level seed, entropy fan-out,
        atom count) and the exported state content itself.  Equal digests
        therefore guarantee byte-identical out-of-session encoding, which
        is what lets worker processes key persistent session caches on
        it (:func:`repro.stream.executor._session_for`).
        """
        import hashlib

        state = self._require_state()
        needs_reference = method_entry(method).needs_reference
        reference = state.reference if needs_reference else None
        fit = state.levels.fit
        h = hashlib.blake2b(digest_size=16)
        h.update(
            repr(
                (
                    method,
                    self.config.quantization_scale,
                    self.config.sequence_mode,
                    self.config.lossless_backend,
                    self.config.level_seed,
                    self.config.entropy_streams,
                    self.meta.n_atoms,
                )
            ).encode()
        )
        h.update(np.float64(self.error_bound).tobytes())
        if reference is not None:
            h.update(repr(reference.shape).encode())
            h.update(np.ascontiguousarray(reference).tobytes())
        if fit is not None:
            h.update(
                np.float64([fit.lam, fit.mu, fit.residual]).tobytes()
            )
            h.update(repr((fit.k, fit.centroids.shape)).encode())
            h.update(np.ascontiguousarray(fit.centroids).tobytes())
        return reference, fit, h.hexdigest()

    def seed_session(self, reference, level_fit) -> None:
        """Adopt cross-buffer state exported from another session."""
        state = self._require_state()
        if reference is not None:
            state.reference = np.asarray(reference, dtype=np.float64)
        if level_fit is not None:
            state.levels.seed(level_fit)

    def note_external_buffer(self) -> None:
        """Account for one buffer encoded out-of-session (keeps the ADP
        trial schedule aligned with the true buffer count)."""
        self._require_state()
        if self.config.method == "adp":
            self._selector.note_external()

    def audit_decoder(self) -> "MDZAxisCompressor":
        """A fresh decode-only session mirroring this one's frozen state.

        Built the way a real :class:`~repro.stream.reader.StreamingReader`
        rebuilds a decode session — same config, same resolved bound,
        seeded with the frozen reference snapshot and level fit — so the
        quality auditor (:mod:`repro.telemetry.quality`) round-trips a
        blob through exactly the bytes-to-values path a reader would use,
        not through this session's private encoder-side state.
        """
        state = self._require_state()
        decoder = MDZAxisCompressor(self.config)
        decoder.begin(self.error_bound, self.meta)
        decoder.seed_session(state.reference, state.levels.fit)
        return decoder


class MDZ:
    """Whole-trajectory MDZ compressor producing ``.mdz`` containers.

    Example
    -------
    >>> from repro import MDZ, MDZConfig
    >>> mdz = MDZ(MDZConfig(error_bound=1e-3, buffer_size=10))
    >>> blob = mdz.compress(positions)          # (T, N, 3) array
    >>> restored = mdz.decompress(blob)         # same shape, bounded error
    """

    def __init__(self, config: MDZConfig | None = None) -> None:
        self.config = config if config is not None else MDZConfig()

    def compress(self, positions: np.ndarray) -> bytes:
        """Compress a (snapshots, atoms, 3) trajectory into a container."""
        from ..io.container import write_container

        positions = np.asarray(positions)
        if positions.ndim == 2:
            positions = positions[:, :, None]
        if positions.ndim != 3:
            raise CompressionError(
                f"expected (snapshots, atoms, axes), got shape {positions.shape}"
            )
        if not np.isfinite(positions).all():
            raise CompressionError("input contains non-finite values")
        return write_container(positions, self.config)

    def decompress(self, blob: bytes) -> np.ndarray:
        """Decompress a container back to the full trajectory."""
        from ..io.container import read_container

        return read_container(blob)

    def decompress_batch(self, blob: bytes, batch_index: int) -> np.ndarray:
        """Decode a single buffer (all axes) from a container.

        Random access is cheap for VQ-coded buffers; for VQT/MT the decoder
        still only touches the buffers needed to rebuild the reference.
        """
        from ..io.container import read_container_batch

        return read_container_batch(blob, batch_index)


register_compressor("mdz", lambda: MDZAxisCompressor(MDZConfig(method="adp")))
register_compressor("mdz-vq", lambda: MDZAxisCompressor(MDZConfig(method="vq")))
register_compressor(
    "mdz-vqt", lambda: MDZAxisCompressor(MDZConfig(method="vqt"))
)
register_compressor("mdz-mt", lambda: MDZAxisCompressor(MDZConfig(method="mt")))
register_compressor(
    "mdz-interp", lambda: MDZAxisCompressor(MDZConfig(method="interp"))
)
register_compressor(
    "mdz-bitadaptive",
    lambda: MDZAxisCompressor(MDZConfig(method="bitadaptive")),
)
