"""Bitadaptive: per-region bit-depth member (registry id 5).

The second new member added through the stage registry, and the proof
that the registry made members cheap: it *is* :class:`~repro.core.mt.
MTMethod` — same reference-head + time-wise-tail prediction — with the
entropy backend swapped from the global Huffman codebook to the
per-region bit-adaptive packer (:mod:`repro.sz.bitpack`, following the
particle-compression approach of arXiv 2404.02826).  One attribute
override; prediction, state handling, ADP trial sizing, and streaming
dispatch are all inherited.

Where it wins: mixtures of regimes.  A single Huffman codebook over a
buffer whose regions have different residual spreads pays ~1 bit per
symbol just to say which regime a symbol came from; the per-region
``(offset, width)`` table amortizes that over 4096 values, and a quiet
region of constant codes costs zero payload bits.
"""

from __future__ import annotations

from .mt import MTMethod
from .registry import register_method


class BitAdaptiveMethod(MTMethod):
    """MT prediction with per-region bit-adaptive serialization."""

    name = "bitadaptive"
    encoder_name = "bitpack"


register_method(
    "bitadaptive",
    BitAdaptiveMethod,
    needs_reference=True,
    predictors=("reference", "lorenzo1d", "timewise"),
    encoder="bitpack",
    description=(
        "MT prediction with per-region (offset, bit-width) fixed "
        "packing instead of Huffman; wins when local code ranges differ "
        "across a buffer (arXiv 2404.02826)"
    ),
)
