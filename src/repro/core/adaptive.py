"""ADP: adaptive selection of the best compressor (Section VI-D).

Data patterns are stable in the short term but drift over a long
simulation (Figure 10: MT leads before snapshot ~400 on Copper-B, VQT
after).  ADP therefore re-evaluates VQ, VQT, and MT periodically: every
``interval`` buffers (the paper: every 50 compression operations) the
current buffer is compressed with all three methods *independently*, the
smallest output wins, and the winner codes the following buffers alone.
The trial costs under ~6 % of total compression time at the default
interval, matching the paper's overhead budget.

Selection happens per axis — Table VI shows ADP picking VQ for x/y and MT
for z on Copper-B — which falls out naturally here because every axis
stream runs its own session.

Trials are *cheap* by construction: every member runs only its fused
``prepare`` kernels (sharing intermediates — VQT's head is a row slice of
VQ's full-batch pass), and candidates are sized from entropy estimates +
cached codebook stats instead of three full encodes.  Estimates are mapped
to predicted *final* (dictionary-coded) sizes through per-method ratios
learned from past exact trials; only candidates within
:data:`TRIAL_MARGIN` of the best prediction are fully serialized and
compressed, and the winner among those is exact.  The first two trials of
a session and every :data:`EXACT_REFRESH`-th trial thereafter compare all
members exactly, keeping the ratios honest as data drifts.  The winner's
payload is always a full exact encode, so archives are byte-identical to
an exhaustive selector whenever the winner choice agrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sz.lossless import lossless_compress
from ..telemetry import get_recorder
from .methods import MDZMethod, MethodState
from .registry import DEFAULT_MEMBERS, get_method, validate_members

#: Candidates whose predicted final size is within this fraction of the
#: best prediction are fully encoded and compared exactly.  Generous on
#: purpose: the estimate cannot see cross-symbol structure the dictionary
#: coder exploits, so only clearly-dominated members may be skipped.
TRIAL_MARGIN = 0.5

#: Every this-many trials (after the two session-opening ones) all members
#: are compared exactly, refreshing the per-method size ratios.
EXACT_REFRESH = 4


@dataclass
class SelectionRecord:
    """One ADP evaluation: the buffer index, trial sizes, and the winner.

    ``estimated`` lists the members whose recorded size is a ratio-scaled
    prediction rather than an exact dictionary-coded byte count (empty for
    exact trials).
    """

    buffer_index: int
    sizes: dict[str, int]
    chosen: str
    estimated: tuple[str, ...] = ()


@dataclass
class ADPSelector:
    """Periodic multi-way trial; keeps the winning method between trials.

    The candidate pool is configurable (``members``): any subset of the
    registered methods (:func:`repro.core.registry.method_names`), so
    new registry members — ``interp``, ``bitadaptive`` — join the trial
    by name with no selector changes.  The default pool is the paper's
    three-way VQ/VQT/MT trial.
    """

    interval: int = 50
    members: tuple[str, ...] = DEFAULT_MEMBERS
    methods: dict[str, MDZMethod] | None = None
    current: str | None = None
    buffers_seen: int = 0
    history: list[SelectionRecord] = field(default_factory=list)
    #: Per-method (sum of exact final sizes, sum of estimates) pairs — the
    #: learned estimate -> final correction applied at estimated trials.
    ratio_stats: dict[str, tuple[int, int]] = field(default_factory=dict)
    trials_run: int = 0
    #: Candidate margin for estimated trials; ``float("inf")`` disables
    #: the shortcut entirely and reproduces the exhaustive selector.
    margin: float = TRIAL_MARGIN
    #: Exact-trial cadence (after the two session-opening exact trials).
    exact_refresh: int = EXACT_REFRESH

    def __post_init__(self) -> None:
        if self.methods is None:
            self.methods = {
                name: get_method(name)
                for name in validate_members(self.members)
            }
        else:
            self.members = tuple(self.methods)

    def _note_ratio(self, name: str, estimate: int, final: int) -> None:
        prev_final, prev_est = self.ratio_stats.get(name, (0, 0))
        self.ratio_stats[name] = (prev_final + final, prev_est + estimate)

    def _predicted_final(self, name: str, estimate: int) -> int:
        total_final, total_est = self.ratio_stats.get(name, (0, 0))
        if total_est <= 0:
            return estimate
        return max(1, int(round(estimate * (total_final / total_est))))

    def trial_due(self) -> bool:
        """True when the next buffer must run a multi-way trial.

        Trials run at the session start, at every `interval`, and once at
        buffer 1: the first buffer biases MT (its reference does not
        exist yet, so it pays the Lorenzo bootstrap), and the follow-up
        removes that bias as soon as the reference is in place.
        """
        return (
            self.current is None
            or self.buffers_seen == 1
            or self.buffers_seen % self.interval == 0
        )

    def note_external(self) -> str:
        """Account for a buffer encoded outside the selector.

        The streaming executor dispatches non-trial buffers to worker
        processes; the session-side selector still has to advance its
        buffer counter so later trials fire on schedule.  Returns the
        method the external encoder must use.
        """
        if self.trial_due():
            raise RuntimeError(
                "cannot encode a trial buffer externally: the selector "
                "must run the multi-way trial in-session"
            )
        self.buffers_seen += 1
        return self.current

    def encode(
        self, batch: np.ndarray, state: MethodState
    ) -> tuple[str, bytes, np.ndarray]:
        """Encode one buffer, re-evaluating the method when due.

        Returns ``(method_name, payload, reconstruction)``.  Trials run on
        cloned state so the losers cannot disturb the session; the winning
        trial's payload is reused directly (its state inputs are
        value-identical to the session's).
        """
        if self.trial_due():
            recorder = get_recorder()
            # The absorb span keeps the losers' stage annotations (their
            # Huffman fan-out, OOS counts, ...) out of the enclosing
            # buffer's provenance record; the trial *outcome* is
            # annotated after the span closes, so it does land there.
            with recorder.timer("adp.trial"), \
                    recorder.span("adp.trial", absorb=True):
                # Every member runs only its fused prepare kernels; the
                # shared dict lets VQT slice VQ's full-batch intermediates
                # instead of re-quantizing the head snapshot.
                shared: dict = {}
                states: dict[str, MethodState] = {}
                prepared: dict[str, object] = {}
                for name, method in self.methods.items():
                    with recorder.span(f"adp.trial.{name}", absorb=True):
                        states[name] = state.clone_for_trial()
                        prepared[name] = method.prepare(
                            batch, states[name], shared
                        )
                estimates = {
                    name: method.estimate(prepared[name], states[name])
                    for name, method in self.methods.items()
                }
                exact = self.trials_run < 2 or (
                    self.trials_run % self.exact_refresh == 0
                )
                if exact:
                    candidates = list(self.methods)
                else:
                    predicted = {
                        name: self._predicted_final(name, estimates[name])
                        for name in self.methods
                    }
                    cutoff = min(predicted.values()) * (1.0 + self.margin)
                    candidates = [
                        name for name in self.methods
                        if predicted[name] <= cutoff
                    ]
                # Compare *final* sizes among the candidates: the
                # dictionary-coder stage is where e.g. VQ's repeated
                # level-index streams collapse, so ranking raw payloads
                # would misjudge the methods.  The estimate stage cannot
                # see that either, which is exactly why skipped members
                # must be clearly dominated and ratios are re-learned
                # from every exact encode.
                blobs: dict[str, bytes] = {}
                sizes: dict[str, int] = {}
                for name in candidates:
                    with recorder.span(f"adp.trial.{name}", absorb=True):
                        blobs[name] = self.methods[name].serialize(
                            prepared[name], states[name]
                        )
                    sizes[name] = len(
                        lossless_compress(blobs[name], state.lossless_backend)
                    )
                    self._note_ratio(name, estimates[name], sizes[name])
                skipped = tuple(n for n in self.methods if n not in sizes)
                for name in skipped:
                    sizes[name] = self._predicted_final(name, estimates[name])
            previous = self.current
            self.current = min(
                candidates, key=lambda name: (sizes[name], name)
            )
            self.trials_run += 1
            recorder.annotate(
                adp_trial=True, adp_sizes=sizes, adp_chosen=self.current
            )
            if recorder.enabled:
                recorder.count("adp.trials")
                recorder.count(f"adp.winner.{self.current}")
                if previous is not None and previous != self.current:
                    recorder.count("adp.switches")
                if skipped:
                    recorder.count("adp.trial.skipped_encodes", len(skipped))
                for name, size in sizes.items():
                    recorder.count(f"adp.trial_bytes.{name}", size)
            self.history.append(
                SelectionRecord(
                    buffer_index=self.buffers_seen,
                    sizes=sizes,
                    chosen=self.current,
                    estimated=skipped,
                )
            )
            blob = blobs[self.current]
            recon = self.methods[self.current].reconstruction(
                prepared[self.current]
            )
        else:
            blob, recon = self.methods[self.current].encode(batch, state)
        self.buffers_seen += 1
        return self.current, blob, recon

    def reset(self) -> None:
        """Forget all selection state (new session)."""
        self.current = None
        self.buffers_seen = 0
        self.history.clear()
        self.ratio_stats.clear()
        self.trials_run = 0
