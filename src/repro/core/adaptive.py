"""ADP: adaptive selection of the best compressor (Section VI-D).

Data patterns are stable in the short term but drift over a long
simulation (Figure 10: MT leads before snapshot ~400 on Copper-B, VQT
after).  ADP therefore re-evaluates VQ, VQT, and MT periodically: every
``interval`` buffers (the paper: every 50 compression operations) the
current buffer is compressed with all three methods *independently*, the
smallest output wins, and the winner codes the following buffers alone.
The trial costs under ~6 % of total compression time at the default
interval, matching the paper's overhead budget.

Selection happens per axis — Table VI shows ADP picking VQ for x/y and MT
for z on Copper-B — which falls out naturally here because every axis
stream runs its own session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sz.lossless import lossless_compress
from ..telemetry import get_recorder
from .methods import MDZMethod, MethodState
from .mt import MTMethod
from .vq import VQMethod
from .vqt import VQTMethod


@dataclass
class SelectionRecord:
    """One ADP evaluation: the buffer index, trial sizes, and the winner."""

    buffer_index: int
    sizes: dict[str, int]
    chosen: str


@dataclass
class ADPSelector:
    """Periodic three-way trial; keeps the winning method between trials."""

    interval: int = 50
    methods: dict[str, MDZMethod] = field(
        default_factory=lambda: {
            m.name: m for m in (VQMethod(), VQTMethod(), MTMethod())
        }
    )
    current: str | None = None
    buffers_seen: int = 0
    history: list[SelectionRecord] = field(default_factory=list)

    def trial_due(self) -> bool:
        """True when the next buffer must run a three-way trial.

        Trials run at the session start, at every `interval`, and once at
        buffer 1: the first buffer biases MT (its reference does not
        exist yet, so it pays the Lorenzo bootstrap), and the follow-up
        removes that bias as soon as the reference is in place.
        """
        return (
            self.current is None
            or self.buffers_seen == 1
            or self.buffers_seen % self.interval == 0
        )

    def note_external(self) -> str:
        """Account for a buffer encoded outside the selector.

        The streaming executor dispatches non-trial buffers to worker
        processes; the session-side selector still has to advance its
        buffer counter so later trials fire on schedule.  Returns the
        method the external encoder must use.
        """
        if self.trial_due():
            raise RuntimeError(
                "cannot encode a trial buffer externally: the selector "
                "must run the three-way trial in-session"
            )
        self.buffers_seen += 1
        return self.current

    def encode(
        self, batch: np.ndarray, state: MethodState
    ) -> tuple[str, bytes, np.ndarray]:
        """Encode one buffer, re-evaluating the method when due.

        Returns ``(method_name, payload, reconstruction)``.  Trials run on
        cloned state so the losers cannot disturb the session; the winning
        trial's payload is reused directly (its state inputs are
        value-identical to the session's).
        """
        if self.trial_due():
            recorder = get_recorder()
            # The absorb span keeps the losers' stage annotations (their
            # Huffman fan-out, OOS counts, ...) out of the enclosing
            # buffer's provenance record; the trial *outcome* is
            # annotated after the span closes, so it does land there.
            with recorder.timer("adp.trial"), \
                    recorder.span("adp.trial", absorb=True):
                results: dict[str, tuple[bytes, np.ndarray]] = {}
                for name, method in self.methods.items():
                    with recorder.span(f"adp.trial.{name}", absorb=True):
                        results[name] = method.encode(
                            batch, state.clone_for_trial()
                        )
                # Compare *final* sizes: the dictionary-coder stage is where
                # e.g. VQ's repeated level-index streams collapse, so ranking
                # raw payloads would misjudge the methods.
                sizes = {
                    name: len(lossless_compress(blob, state.lossless_backend))
                    for name, (blob, _) in results.items()
                }
            previous = self.current
            self.current = min(sizes, key=lambda name: (sizes[name], name))
            recorder.annotate(
                adp_trial=True, adp_sizes=sizes, adp_chosen=self.current
            )
            if recorder.enabled:
                recorder.count("adp.trials")
                recorder.count(f"adp.winner.{self.current}")
                if previous is not None and previous != self.current:
                    recorder.count("adp.switches")
                for name, size in sizes.items():
                    recorder.count(f"adp.trial_bytes.{name}", size)
            self.history.append(
                SelectionRecord(
                    buffer_index=self.buffers_seen,
                    sizes=sizes,
                    chosen=self.current,
                )
            )
            blob, recon = results[self.current]
        else:
            blob, recon = self.methods[self.current].encode(batch, state)
        self.buffers_seen += 1
        return self.current, blob, recon

    def reset(self) -> None:
        """Forget all selection state (new session)."""
        self.current = None
        self.buffers_seen = 0
        self.history.clear()
