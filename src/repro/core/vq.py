"""VQ: vector-quantization-based compression (Algorithm 1).

Every data point is predicted by the centroid of its nearest crystal level
(``V_i = mu + lambda * L_i``); the *relative level index* ``j_i = L_i -
L_{i-1}`` and the quantized prediction residual ``b_i`` are Huffman coded.
Because prediction never crosses snapshots, any buffer can be decompressed
in isolation — the property the paper highlights for post hoc analysis of
individual snapshots.

Out-of-scope residuals (beyond the quantization scale) are replaced by the
reserved marker and their absolute grid level — anchored at ``mu`` — is
stored in the varint side channel.
"""

from __future__ import annotations

import numpy as np

from ..cluster.level_detect import LevelFit
from ..exceptions import DecompressionError
from ..serde import BlobReader, BlobWriter
from ..sz.huffman import HuffmanCodec
from ..sz.pipeline import decode_int_stream, encode_int_stream
from .methods import MDZMethod, MethodState


def vq_encode_array(
    batch: np.ndarray, fit: LevelFit, state: MethodState
) -> tuple[bytes, np.ndarray]:
    """Encode a (T, N) array with level prediction; returns (blob, recon).

    Shared by VQ (whole buffers) and VQT (first snapshot only).
    """
    quantizer = state.quantizer
    layout = state.layout
    levels = fit.level_index(batch)
    predictions = fit.level_value(levels)
    residual_codes = np.rint(
        (batch - predictions) / quantizer.bin_width
    ).astype(np.int64)
    absolute = quantizer.grid_levels(batch, fit.mu)
    block = quantizer.split(residual_codes, absolute, order=layout)
    # Relative level indexes: delta within each snapshot, first from 0.
    rel = np.diff(levels, axis=1, prepend=np.zeros((batch.shape[0], 1), np.int64))
    writer = BlobWriter()
    writer.write_json(
        {"lam": fit.lam, "mu": fit.mu, "shape": list(batch.shape)}
    )
    writer.write_bytes(
        HuffmanCodec.encode(
            rel.ravel(order=layout), streams=state.entropy_streams
        )
    )
    writer.write_bytes(
        encode_int_stream(
            block,
            layout,
            alphabet_hint=quantizer.scale + 1,
            streams=state.entropy_streams,
        )
    )
    recon = _reconstruct(block, levels, fit, state)
    return writer.getvalue(), recon


def vq_decode_array(blob: bytes, state: MethodState) -> np.ndarray:
    """Inverse of :func:`vq_encode_array`."""
    quantizer = state.quantizer
    layout = state.layout
    reader = BlobReader(blob)
    meta = reader.read_json()
    shape = tuple(int(x) for x in meta["shape"])
    fit = LevelFit(
        lam=float(meta["lam"]),
        mu=float(meta["mu"]),
        k=0,
        centroids=np.empty(0),
        residual=0.0,
    )
    rel = HuffmanCodec.decode(reader.read_bytes()).reshape(shape, order=layout)
    levels = np.cumsum(rel, axis=1)
    block = decode_int_stream(reader.read_bytes())
    if block.codes.shape != shape:
        raise DecompressionError(
            f"VQ stream shape mismatch: {block.codes.shape} vs {shape}"
        )
    return _reconstruct(block, levels, fit, state)


def _reconstruct(block, levels, fit: LevelFit, state: MethodState) -> np.ndarray:
    """Level prediction + dequantized residual, with literal substitution."""
    quantizer = state.quantizer
    predictions = fit.level_value(levels)
    recon = predictions + block.codes * quantizer.bin_width
    mask = block.codes == block.marker
    n_mask = int(mask.sum())
    if n_mask != block.wide.size:
        raise DecompressionError(
            f"VQ out-of-scope mismatch: {n_mask} markers vs "
            f"{block.wide.size} literals"
        )
    if n_mask:
        literal_values = quantizer.dequantize_levels(block.wide, fit.mu)
        if block.order == "F":
            recon_t = recon.T
            recon_t[mask.T] = literal_values
            recon = recon_t.T
        else:
            recon[mask] = literal_values
    return recon


class VQMethod(MDZMethod):
    """Vector-quantization compression of whole buffers."""

    name = "vq"

    def encode(self, batch, state):
        fit = state.levels.fit_for(batch[0])
        return vq_encode_array(batch, fit, state)

    def decode(self, blob, state):
        return vq_decode_array(blob, state)
