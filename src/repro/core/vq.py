"""VQ: vector-quantization-based compression (Algorithm 1).

Every data point is predicted by the centroid of its nearest crystal level
(``V_i = mu + lambda * L_i``); the *relative level index* ``j_i = L_i -
L_{i-1}`` and the quantized prediction residual ``b_i`` are Huffman coded.
Because prediction never crosses snapshots, any buffer can be decompressed
in isolation — the property the paper highlights for post hoc analysis of
individual snapshots.

Out-of-scope residuals (beyond the quantization scale) are replaced by the
reserved marker and their absolute grid level — anchored at ``mu`` — is
stored in the varint side channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.level_detect import LevelFit
from ..exceptions import DecompressionError
from ..serde import BlobReader, BlobWriter
from ..sz.huffman import HuffmanCodec, estimate_encoded_bytes
from ..sz.pipeline import (
    decode_int_stream,
    encode_int_stream,
    estimate_int_stream_bytes,
)
from ..sz.quantizer import QuantizedBlock
from .methods import MDZMethod, MethodState
from .registry import register_method


@dataclass
class VQPrepared:
    """Intermediates of one VQ pass, kept for reuse.

    The fused prepare kernel computes everything the serializer *and* the
    reconstruction need in one pass; ADP trials additionally slice these
    arrays to derive the VQT head without re-quantizing (``absolute`` and
    ``mask`` exist so a sub-range can be re-split without replaying the
    predictor).
    """

    fit: LevelFit
    shape: tuple[int, ...]
    levels: np.ndarray
    rel: np.ndarray
    block: QuantizedBlock
    absolute: np.ndarray
    mask: np.ndarray
    recon: np.ndarray


def vq_prepare(
    batch: np.ndarray, fit: LevelFit, state: MethodState
) -> VQPrepared:
    """Fused quantize -> predict -> residual -> reconstruct pass.

    The encoder-side reconstruction is assembled directly from the
    residual codes and absolute levels already in hand (out-of-scope mask
    computed once), which is arithmetically identical to the decoder's
    replay: in-scope points evaluate the same ``prediction + code *
    bin_width`` expression, and literals the same ``mu + level *
    bin_width``.
    """
    quantizer = state.quantizer
    layout = state.layout
    levels = fit.level_index(batch)
    predictions = fit.level_value(levels)
    residual_codes = np.rint(
        (batch - predictions) / quantizer.bin_width
    ).astype(np.int64)
    absolute = quantizer.grid_levels(batch, fit.mu)
    block, mask = quantizer.split_with_mask(
        residual_codes, absolute, order=layout
    )
    recon = predictions + residual_codes * quantizer.bin_width
    if block.wide.size:
        literal_values = quantizer.dequantize_levels(block.wide, fit.mu)
        if layout == "F":
            recon_t = recon.T
            recon_t[mask.T] = literal_values
        else:
            recon[mask] = literal_values
    # Relative level indexes: delta within each snapshot, first from 0.
    rel = np.diff(levels, axis=1, prepend=np.zeros((batch.shape[0], 1), np.int64))
    return VQPrepared(
        fit=fit,
        shape=tuple(batch.shape),
        levels=levels,
        rel=rel,
        block=block,
        absolute=absolute,
        mask=mask,
        recon=recon,
    )


def vq_head_slice(prepared: VQPrepared, rows: int) -> VQPrepared:
    """Re-derive the prepare result of ``batch[:rows]`` from a full pass.

    Every per-point array of a VQ pass over ``batch[:rows]`` equals the
    corresponding row slice of the full-batch pass (prediction never
    crosses snapshots, and the within-snapshot level deltas start fresh on
    every row), so the only work is re-extracting the side channel for the
    narrowed mask.
    """
    quantizer_marker = prepared.block.marker
    order = prepared.block.order
    mask = prepared.mask[:rows]
    absolute = prepared.absolute[:rows]
    wide = absolute.T[mask.T] if order == "F" else absolute[mask]
    block = QuantizedBlock(
        codes=prepared.block.codes[:rows],
        wide=wide,
        marker=quantizer_marker,
        order=order,
    )
    return VQPrepared(
        fit=prepared.fit,
        shape=(rows,) + prepared.shape[1:],
        levels=prepared.levels[:rows],
        rel=prepared.rel[:rows],
        block=block,
        absolute=absolute,
        mask=mask,
        recon=prepared.recon[:rows],
    )


def vq_serialize(prepared: VQPrepared, state: MethodState) -> bytes:
    """Serialize a prepared VQ pass into the wire payload."""
    writer = BlobWriter()
    writer.write_json(
        {
            "lam": prepared.fit.lam,
            "mu": prepared.fit.mu,
            "shape": list(prepared.shape),
        }
    )
    writer.write_bytes(
        HuffmanCodec.encode(
            prepared.rel.ravel(order=state.layout), streams=state.entropy_streams
        )
    )
    writer.write_bytes(
        encode_int_stream(
            prepared.block,
            state.layout,
            alphabet_hint=state.quantizer.scale + 1,
            streams=state.entropy_streams,
        )
    )
    return writer.getvalue()


def vq_estimate_bytes(prepared: VQPrepared, state: MethodState) -> int:
    """Estimated serialized size (pre-lossless) of a prepared VQ pass."""
    return (
        estimate_encoded_bytes(
            prepared.rel.ravel(order=state.layout), streams=state.entropy_streams
        )
        + estimate_int_stream_bytes(
            prepared.block,
            state.layout,
            alphabet_hint=state.quantizer.scale + 1,
            streams=state.entropy_streams,
        )
        + 48  # json head: lam/mu floats + shape
    )


def vq_encode_array(
    batch: np.ndarray, fit: LevelFit, state: MethodState
) -> tuple[bytes, np.ndarray]:
    """Encode a (T, N) array with level prediction; returns (blob, recon).

    Shared by VQ (whole buffers) and VQT (first snapshot only).
    """
    prepared = vq_prepare(batch, fit, state)
    return vq_serialize(prepared, state), prepared.recon


def vq_decode_array(blob: bytes, state: MethodState) -> np.ndarray:
    """Inverse of :func:`vq_encode_array`."""
    quantizer = state.quantizer
    layout = state.layout
    reader = BlobReader(blob)
    meta = reader.read_json()
    shape = tuple(int(x) for x in meta["shape"])
    fit = LevelFit(
        lam=float(meta["lam"]),
        mu=float(meta["mu"]),
        k=0,
        centroids=np.empty(0),
        residual=0.0,
    )
    rel = HuffmanCodec.decode(reader.read_bytes()).reshape(shape, order=layout)
    levels = np.cumsum(rel, axis=1)
    block = decode_int_stream(reader.read_bytes())
    if block.codes.shape != shape:
        raise DecompressionError(
            f"VQ stream shape mismatch: {block.codes.shape} vs {shape}"
        )
    return _reconstruct(block, levels, fit, state)


def _reconstruct(block, levels, fit: LevelFit, state: MethodState) -> np.ndarray:
    """Level prediction + dequantized residual, with literal substitution."""
    quantizer = state.quantizer
    predictions = fit.level_value(levels)
    recon = predictions + block.codes * quantizer.bin_width
    mask = block.codes == block.marker
    n_mask = int(mask.sum())
    if n_mask != block.wide.size:
        raise DecompressionError(
            f"VQ out-of-scope mismatch: {n_mask} markers vs "
            f"{block.wide.size} literals"
        )
    if n_mask:
        literal_values = quantizer.dequantize_levels(block.wide, fit.mu)
        if block.order == "F":
            recon_t = recon.T
            recon_t[mask.T] = literal_values
            recon = recon_t.T
        else:
            recon[mask] = literal_values
    return recon


class VQMethod(MDZMethod):
    """Vector-quantization compression of whole buffers."""

    name = "vq"

    def prepare(self, batch, state, shared=None):
        if shared is not None and "vq_full" in shared:
            return shared["vq_full"]
        fit = state.levels.fit_for(batch[0])
        prepared = vq_prepare(batch, fit, state)
        if shared is not None:
            shared["vq_full"] = prepared
        return prepared

    def serialize(self, prepared, state):
        return vq_serialize(prepared, state)

    def estimate(self, prepared, state):
        return vq_estimate_bytes(prepared, state)

    def reconstruction(self, prepared):
        return prepared.recon

    def decode(self, blob, state):
        return vq_decode_array(blob, state)
register_method(
    "vq",
    VQMethod,
    predictors=("level",),
    encoder="huffman-int-stream",
    description=(
        "Vector-quantization: every point predicted by its nearest "
        "crystal-level centroid; buffers decode in isolation "
        "(Algorithm 1)"
    ),
)
