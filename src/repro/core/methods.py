"""Shared machinery for MDZ's three prediction methods.

Each method (VQ, VQT, MT) is a stateless strategy object operating on a
:class:`MethodState` that carries the per-session artifacts: the quantizer,
the cached level model, the sequence layout, and — for MT — the
reconstruction of the session's first snapshot (the paper's "snapshot 0").

``encode`` returns both the serialized payload *and* the full batch
reconstruction; the session uses the reconstruction to maintain the MT
reference (and callers get error verification for free).  ``decode``
mirrors the encoding exactly, so an encoder and a decoder fed the same blob
sequence stay in lock step.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..sz.quantizer import LinearQuantizer
from .levels import SessionLevelModel

#: Wire ids of the methods (stored per batch in the container).  This is
#: the single source of truth for the container format: a member cannot
#: be registered (:func:`repro.core.registry.register_method`) without a
#: reserved id here, and ids are never reused — see
#: ``docs/formats.md#method-payloads``.
METHOD_IDS = {"vq": 1, "vqt": 2, "mt": 3, "interp": 4, "bitadaptive": 5}
METHOD_NAMES = {v: k for k, v in METHOD_IDS.items()}


@dataclass
class MethodState:
    """Mutable per-session state shared by the methods.

    Attributes
    ----------
    quantizer:
        The session's linear-scale quantizer (absolute bound + scale).
    layout:
        ``"F"`` for Seq-2 (default), ``"C"`` for Seq-1.
    levels:
        Lazily-fitted level model (used by VQ and VQT).
    reference:
        Reconstruction of the session's first snapshot; ``None`` until the
        first batch has been coded.  MT predicts every buffer's first
        snapshot from it.
    lossless_backend:
        Name of the trailing dictionary coder.
    entropy_streams:
        Huffman sub-stream fan-out handed to the entropy stage
        (``None`` = auto-scale with array size).
    """

    quantizer: LinearQuantizer
    layout: str = "F"
    levels: SessionLevelModel = field(default_factory=SessionLevelModel)
    reference: np.ndarray | None = None
    lossless_backend: str = "zlib"
    entropy_streams: int | None = None

    def clone_for_trial(self) -> "MethodState":
        """A shallow trial copy: shares the level model (it is immutable
        once fitted) but isolates the reference so ADP trials cannot
        corrupt the session."""
        return MethodState(
            quantizer=self.quantizer,
            layout=self.layout,
            levels=self.levels,
            reference=None if self.reference is None else self.reference.copy(),
            lossless_backend=self.lossless_backend,
            entropy_streams=self.entropy_streams,
        )


class MDZMethod(ABC):
    """One of MDZ's prediction strategies (VQ / VQT / MT).

    The encode side is split into two stages so the ADP selector can run
    cheap trials:

    * :meth:`prepare` — the fused quantize/predict/residual kernels.
      Returns a method-specific prepared object carrying every
      intermediate (including the batch reconstruction).  Trial members
      share work through the optional ``shared`` dict: VQ publishes its
      full-batch pass there and VQT derives its head from a row slice of
      it instead of re-quantizing.
    * :meth:`serialize` — turns a prepared object into the wire payload.

    :meth:`estimate` prices a prepared object (approximate serialized
    bytes, pre-lossless) from histograms and cached codebook stats without
    packing a single bit; the selector sizes trial candidates with it and
    serializes only the winner.  :meth:`encode` composes the two stages
    and is what non-trial callers use.
    """

    #: Short name ("vq", "vqt", "mt").
    name: str = "abstract"

    @property
    def method_id(self) -> int:
        """Wire id of this method."""
        return METHOD_IDS[self.name]

    @abstractmethod
    def prepare(self, batch: np.ndarray, state: MethodState, shared=None):
        """Run the fused encode kernels; returns the prepared intermediates."""

    @abstractmethod
    def serialize(self, prepared, state: MethodState) -> bytes:
        """Serialize a :meth:`prepare` result into the wire payload."""

    @abstractmethod
    def estimate(self, prepared, state: MethodState) -> int:
        """Approximate serialized byte count of a :meth:`prepare` result."""

    @abstractmethod
    def reconstruction(self, prepared) -> np.ndarray:
        """The batch reconstruction carried by a :meth:`prepare` result."""

    def encode(
        self, batch: np.ndarray, state: MethodState
    ) -> tuple[bytes, np.ndarray]:
        """Encode a (T, N) batch; returns (payload, reconstruction)."""
        prepared = self.prepare(batch, state)
        return self.serialize(prepared, state), self.reconstruction(prepared)

    @abstractmethod
    def decode(self, blob: bytes, state: MethodState) -> np.ndarray:
        """Decode a payload produced by :meth:`encode` under equal state."""
