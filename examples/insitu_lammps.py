"""In-situ compression: MDZ inside an MD run loop (the Table VII setup).

Runs the Lennard-Jones benchmark twice — dumping raw coordinates vs
piping the dump through MDZ — and prints the runtime breakdown, showing
that in-situ compression shrinks the output cost without slowing the
simulation.

Also shows the lower-level building blocks: the MD engine with a dump
callback, and the LAMMPS-style text dump writer for interoperability.

Run:  python examples/insitu_lammps.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.io.dump import DumpFrame, read_dump, write_dump
from repro.lammps import format_breakdown_table, run_lj_benchmark
from repro.md import MDSimulation, fcc_lattice


def table_vii_demo() -> None:
    """The with/without-MDZ comparison of Table VII, at demo scale."""
    results = []
    for use_mdz in (False, True):
        results.append(
            run_lj_benchmark(
                cells=6,            # 864 atoms
                steps=240,
                dump_every=8,
                use_mdz=use_mdz,
                buffer_size=10,
                equilibration=30,
            )
        )
    print(format_breakdown_table(results))
    raw, mdz = (r.row() for r in results)
    print(
        f"\nMDZ cut the output share from {raw['output']:.1%} to "
        f"{mdz['output']:.1%} at an output CR of {mdz['output_cr']:.1f}x\n"
    )


def dump_file_round_trip() -> None:
    """Drive the MD engine by hand and round-trip a text dump file."""
    lattice = fcc_lattice((4, 4, 4), a=1.68)
    sim = MDSimulation(
        lattice.positions, lattice.box, temperature=1.0, seed=3
    )
    frames = []

    def collect(step: int, positions: np.ndarray) -> float:
        frames.append(
            DumpFrame(
                timestep=step,
                box=np.column_stack([np.zeros(3), lattice.box]),
                positions=positions,
            )
        )
        return 0.0

    sim.run(30, dump_every=10, dump_callback=collect)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "lj.dump"
        write_dump(path, frames)
        back = list(read_dump(path))
        print(
            f"dump file: wrote {len(frames)} frames "
            f"({path.stat().st_size / 1e3:.0f} KB text), "
            f"read back {len(back)} frames, "
            f"first timestep {back[0].timestep}"
        )


if __name__ == "__main__":
    table_vii_demo()
    dump_file_round_trip()
