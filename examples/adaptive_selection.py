"""Watching ADP choose: VQ vs VQT vs MT across data regimes.

Builds three streams with the three archetypal structures the paper
characterizes (Section V) and shows which method the adaptive selector
picks for each, plus how a mid-run regime change triggers a method switch
(the Figure 10 behaviour).

Run:  python examples/adaptive_selection.py
"""

import numpy as np

from repro.baselines.api import SessionMeta
from repro.core.config import MDZConfig
from repro.core.mdz import MDZAxisCompressor
from repro.io.batch import stream_error_bound
from repro.md import EinsteinCrystalModel, fcc_lattice

RNG = np.random.default_rng(11)
BS = 10


def make_streams() -> dict[str, np.ndarray]:
    """One stream per regime: VQ's, VQT/MT's, and a regime-switching one."""
    lattice = fcc_lattice((6, 6, 6), a=3.615)
    sites = lattice.positions

    # Crystal with snapshot-to-snapshot decorrelated vibration: spatial
    # levels are the only usable structure -> VQ territory.
    vq_regime = EinsteinCrystalModel(
        sites=sites, amplitude=0.03, correlation=0.02
    ).generate(120, RNG)[:, :, 0]

    # Extremely smooth in time -> time prediction (VQT/MT) territory.
    smooth = EinsteinCrystalModel(
        sites=sites, amplitude=0.03, correlation=0.995
    ).generate(120, RNG)[:, :, 0]

    # Starts smooth, then the crystal begins to drift -> the best method
    # changes mid-run.
    switching = EinsteinCrystalModel(
        sites=sites, amplitude=0.02, correlation=0.9
    ).generate(120, RNG)[:, :, 0]
    drift = np.cumsum(RNG.normal(0.05, 0.01, 60).clip(min=0))
    switching[60:] += drift[:, None]

    return {"vq-regime": vq_regime, "smooth": smooth, "switching": switching}


def main() -> None:
    for name, stream in make_streams().items():
        bound = stream_error_bound(stream, 1e-3)
        session = MDZAxisCompressor(
            MDZConfig(method="adp", adaptation_interval=4)
        )
        session.begin(bound, SessionMeta(n_atoms=stream.shape[1]))
        total = sum(
            len(session.compress_batch(stream[t : t + BS]))
            for t in range(0, stream.shape[0], BS)
        )
        choices = [
            f"buffer {rec.buffer_index}: {rec.chosen} "
            f"({', '.join(f'{m}={s}B' for m, s in sorted(rec.sizes.items()))})"
            for rec in session.selection_history
        ]
        print(f"=== {name} (CR {stream.size * 4 / total:.1f}) ===")
        for line in choices:
            print("  " + line)
        print()


if __name__ == "__main__":
    main()
