"""Streaming compression: feed snapshots as they are produced.

Three demos of the `repro.stream` subsystem:

1. an MD run feeding a `StreamingWriter` one snapshot per dump step —
   memory stays flat, the `MDZ2` container grows incrementally, and a
   worker pool can absorb the compression cost;
2. random access and incremental reading of the resulting container;
3. crash recovery — a writer killed mid-stream leaves a file whose
   completed buffers are still readable with `recover=True`.

Run:  python examples/streaming_insitu.py
"""

import io
import tempfile
from pathlib import Path

import numpy as np

from repro.core.config import MDZConfig
from repro.exceptions import ContainerFormatError
from repro.md import MDSimulation, fcc_lattice
from repro.stream import StreamingReader, StreamingWriter


def in_situ_streaming(path: Path) -> None:
    """Compress an MD run's dumps while the simulation is running."""
    lattice = fcc_lattice((4, 4, 4), a=1.68)
    sim = MDSimulation(
        lattice.positions, lattice.box, temperature=1.0, seed=3
    )
    config = MDZConfig(error_bound=1e-3, buffer_size=10, method="adp")
    # workers=4 fans (buffer, axis) jobs across a process pool; the
    # container bytes are identical to a serial (workers=0) run.
    with StreamingWriter(path, config, workers=4) as writer:
        sim.run(300, dump_every=5, dump_callback=lambda s, x: writer.feed(x))
        stats = writer.close()
    print(
        f"streamed {stats.snapshots} snapshots in {stats.buffers} buffers: "
        f"{stats.raw_bytes / 1e3:.0f} KB -> {stats.bytes_written / 1e3:.1f} KB "
        f"(CR {stats.compression_ratio:.1f}x)"
    )


def random_access(path: Path) -> None:
    """Open the sealed container and read pieces of it."""
    reader = StreamingReader(path)
    print(
        f"container: {reader.snapshots} snapshots x {reader.atoms} atoms, "
        f"{reader.n_buffers} buffers, method={reader.method}"
    )
    middle = reader.read_buffer(reader.n_buffers // 2)
    print(f"buffer {reader.n_buffers // 2}: shape {middle.shape}")
    total = sum(len(part) for part in reader.iter_buffers())
    print(f"iterated {total} snapshots with bounded memory")


def crash_recovery() -> None:
    """A writer that never reaches close() leaves a recoverable file."""
    rng = np.random.default_rng(7)
    base = rng.integers(0, 8, (200, 3)) * 2.0
    sink = io.BytesIO()
    writer = StreamingWriter(sink, MDZConfig(buffer_size=10))
    for _ in range(34):  # 3 full buffers + 4 unflushed snapshots
        writer.feed(base + rng.normal(0, 0.03, base.shape))
    writer.abort()  # simulate the crash: no footer is written
    blob = sink.getvalue()
    try:
        StreamingReader(blob)
    except ContainerFormatError as exc:
        print(f"strict open refused the torn file: {exc}")
    reader = StreamingReader(blob, recover=True)
    print(
        f"recovery scan salvaged {reader.n_buffers} buffers "
        f"({reader.snapshots} snapshots) from the crashed stream"
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        container = Path(tmp) / "run.mdz"
        in_situ_streaming(container)
        random_access(container)
    crash_recovery()
