"""Beyond MD: compressing cosmological particle data (the Figure 16 story).

MDZ targets particle data in general, not just molecular dynamics.  This
example compresses the HACC-like structure-formation dataset with MDZ and
the strongest baselines and prints the ratios, then peeks at *why* MDZ
wins there: no level structure (the VQ fit degenerates to K = 1) but very
smooth coherent motion, so the adaptive selector goes all-in on MT.

Run:  python examples/cosmology_hacc.py
"""

import numpy as np

from repro.cluster import detect_levels
from repro.datasets import load_dataset
from repro.io.batch import run_stream

EPSILON = 1e-3
BS = 10


def main() -> None:
    ds = load_dataset("hacc-1")
    print(
        f"dataset: {ds.name}, {ds.snapshots} snapshots x {ds.atoms} "
        f"particles (paper scale: {ds.spec.paper_atoms:,} particles)"
    )

    # Why VQ won't fire: cosmological positions have no crystal levels.
    fit = detect_levels(ds.axis("x")[0].astype(np.float64), seed=0)
    print(
        f"level detector on x axis: K = {fit.k} "
        f"(no clustering structure -> VQ degenerates, MT takes over)"
    )

    for comp in ("mdz", "sz2", "asn", "lfzip", "mdb"):
        total = 0
        raw = 0
        for axis in range(3):
            stream = ds.axis(axis)
            decoded = run_stream(
                comp,
                stream,
                EPSILON,
                BS,
                original_atoms=ds.spec.paper_atoms,
            )
            total += decoded.result.compressed_bytes
            raw += decoded.result.raw_bytes
        print(f"{comp:6s} CR = {raw / total:6.2f}")


if __name__ == "__main__":
    main()
