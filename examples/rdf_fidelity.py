"""Physical fidelity: the radial distribution function after compression.

Reproduces the Figure 14 analysis at example scale: compress the Copper-B
analog with MDZ and with SZ2 at bounds calibrated to the same compression
ratio, then compare each reconstruction's RDF against the original.  MDZ's
RDF overlays the truth; the baseline's peaks smear.

Run:  python examples/rdf_fidelity.py
"""

import numpy as np

from repro.analysis.ratedistortion import calibrate_epsilon_for_cr
from repro.analysis.rdf import radial_distribution, rdf_deviation
from repro.datasets import load_dataset
from repro.io.batch import run_stream

TARGET_CR = 10.0
BS = 10
SNAPSHOTS = 60


def main() -> None:
    ds = load_dataset("copper-b", snapshots=SNAPSHOTS)
    r, g_ref = radial_distribution(
        ds.positions[-1].astype(np.float64), ds.box
    )
    peak = r[np.argmax(g_ref)]
    print(
        f"original RDF: first peak at r = {peak:.2f} A "
        f"(fcc nearest neighbour = {3.615 / np.sqrt(2):.2f} A)"
    )
    for comp in ("mdz", "sz2"):
        recon = np.empty((SNAPSHOTS, ds.atoms, 3))
        for axis in range(3):
            stream = ds.axis(axis)
            eps, achieved = calibrate_epsilon_for_cr(
                comp, stream, TARGET_CR, buffer_size=BS
            )
            decoded = run_stream(comp, stream, eps, BS, decompress=True)
            recon[:, :, axis] = decoded.reconstruction
        _, g_test = radial_distribution(recon[-1], ds.box)
        dev = rdf_deviation(g_ref, g_test)
        print(
            f"{comp:4s} @ CR {achieved:5.1f}: RDF RMS deviation = {dev:.4f} "
            f"(peak height {g_test.max():.1f} vs original {g_ref.max():.1f})"
        )


if __name__ == "__main__":
    main()
