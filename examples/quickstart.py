"""Quickstart: compress an MD trajectory with MDZ in five lines.

Generates a small copper-like crystal trajectory, compresses it with the
default adaptive configuration (value-range error bound 1e-3, buffer size
10), verifies the error bound, and demonstrates random access to a single
buffer.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MDZ, MDZConfig
from repro.md import EinsteinCrystalModel, fcc_lattice


def main() -> None:
    # 1. A data source: 2048-atom copper crystal vibrating at finite
    #    temperature, saved 60 times (see repro.md for real MD engines).
    lattice = fcc_lattice((8, 8, 8), a=3.615)
    model = EinsteinCrystalModel(
        sites=lattice.positions, amplitude=0.06, correlation=0.5
    )
    positions = model.generate(60, np.random.default_rng(7)).astype(
        np.float32
    )
    raw_bytes = positions.nbytes
    print(f"trajectory: {positions.shape}, {raw_bytes / 1e6:.1f} MB raw")

    # 2. Compress.  MDZConfig mirrors the paper's defaults: epsilon = 1e-3
    #    relative to each axis's value range, buffers of 10 snapshots,
    #    quantization scale 1024, Seq-2 ordering, adaptive method choice.
    config = MDZConfig(error_bound=1e-3, buffer_size=10)
    mdz = MDZ(config)
    blob = mdz.compress(positions)
    print(
        f"compressed: {len(blob) / 1e3:.1f} KB  "
        f"(CR = {raw_bytes / len(blob):.1f}x)"
    )

    # 3. Decompress and verify the error bound per axis.
    restored = mdz.decompress(blob)
    for axis, name in enumerate("xyz"):
        stream = positions[:, :, axis].astype(np.float64)
        bound = config.error_bound * (stream.max() - stream.min())
        err = np.abs(restored[:, :, axis] - stream).max()
        print(f"axis {name}: max error {err:.2e} <= bound {bound:.2e}")
        assert err <= bound * (1 + 1e-9)

    # 4. Random access: decode only the fourth buffer (snapshots 30-39).
    buffer_3 = mdz.decompress_batch(blob, 3)
    assert np.array_equal(buffer_3, restored[30:40])
    print(f"random access: buffer 3 decoded alone, shape {buffer_3.shape}")


if __name__ == "__main__":
    main()
